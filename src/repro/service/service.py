"""Resilient multi-tenant asyncio scan service over the engine.

The production-serving layer the ROADMAP's north star calls for: a
long-lived :class:`ScanService` wraps one
:class:`~repro.engine.CacheAutomatonEngine` per *tenant* (pattern set →
engine via the content-addressed artifact cache — compile once, serve
forever; re-registering with a changed pattern set hot-reloads the
engine) and is robust by construction:

* **Admission control** — one bounded queue across tenants
  (``max_queue``), per-tenant in-flight and stream-size limits, and
  fair round-robin dequeue so one flooding tenant cannot starve the
  rest.  A full queue *sheds load* with a typed, retryable
  :class:`~repro.service.errors.Overloaded` instead of growing without
  bound.
* **Deadlines** — every request carries a time budget; scans run in
  chunks through the engine's checkpoint machinery, so an expired
  deadline interrupts *mid-stream* and returns a typed
  :class:`~repro.service.errors.DeadlineExceeded` carrying the
  partial-progress offset, the reports already emitted, and the resume
  checkpoint (resuming yields bit-identical reports).
* **Circuit breaker** — per tenant; repeated primary-backend failures
  or engine ``health()`` degrade events trip it open, after which the
  tenant's traffic is served by the golden-fallback tier (the
  reference interpreter) until a cooldown-gated probe succeeds.
* **Supervision** — a crashed worker task fails its in-flight request
  with a retryable :class:`~repro.service.errors.WorkerCrashed` and is
  restarted; the event is counted and logged.
* **Graceful drain** — :meth:`ScanService.stop` stops admitting,
  lets queued and in-flight work finish (or deadlines it out after
  ``drain_timeout``), then joins the workers.  Worker pools and
  shared-memory blocks are per-scan and context-managed
  (:class:`~repro.sim.shard.SharedTables`), so a drained service holds
  no leaked OS resources.

Scanning is CPU-bound Python, so workers are cooperating coroutines on
one loop: each yields between chunks, which is what makes deadlines,
fairness, and drain responsive without threads.  The clock is
injectable for deterministic tests.

* **Process-pool execution** — ``scan_workers=N`` (default 0 = in-loop)
  dispatches every primary-tier chunk to a persistent pool of worker
  *processes* (:mod:`repro.service.procpool`) via ``run_in_executor``,
  lifting the one-core ceiling while keeping all of the above: the
  dispatch unit is still one chunk + checkpoint, so deadlines interrupt
  at the same boundaries, chunks of one request may migrate between
  processes, results are bit-identical to ``scan_workers=0``, and a
  dead process surfaces as a retryable
  :class:`~repro.service.errors.WorkerCrashed` with the pool respawned.
  Lazy-DFA tenants publish their packed kernel + warm DFA tables once
  through a :class:`~repro.sim.shard.SharedTables` block so workers
  rebuild zero-copy; other backends rebuild from the registration
  through the shared artifact cache.  The golden-fallback tier (breaker
  open) always runs in-loop — the reference interpreter must not depend
  on the machinery it is the fallback for.
"""

from __future__ import annotations

import asyncio
import hashlib
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.backends.base import BoundedEventLog
from repro.backends.registry import create_backend, resolve_backend_name
from repro.backends.validation import require_bytes
from repro.core.design import CA_P, DesignPoint
from repro.engine import CacheAutomatonEngine
from repro.errors import ReproError
from repro.service.breaker import CircuitBreaker
from repro.service.errors import (
    DeadlineExceeded,
    Overloaded,
    ServiceClosed,
    StreamTooLarge,
    UnknownTenant,
    WorkerCrashed,
)
from repro.service.procpool import (
    ProcPoolScanExecutor,
    TenantWorkerSpec,
    worker_cache_spec,
)
from repro.sim.golden import Checkpoint, Report
from repro.sim.shard import SharedTables

#: Default per-chunk scan granularity — the deadline/fairness quantum.
DEFAULT_CHUNK_BYTES = 4096

#: Default bound on the shared admission queue.
DEFAULT_MAX_QUEUE = 64

#: Cap on retained latency samples (oldest dropped beyond this).
LATENCY_SAMPLE_LIMIT = 100_000


@dataclass(frozen=True)
class TenantLimits:
    """Per-tenant resource limits enforced at admission / construction.

    ``max_stream_bytes`` rejects oversized requests outright
    (:class:`StreamTooLarge`); ``max_in_flight`` bounds one tenant's
    queued + executing requests (:class:`Overloaded` beyond it);
    ``dfa_max_states`` caps the lazy-DFA backend's transition-cache
    state budget so one pathological ruleset cannot grow its DFA cache
    without limit (ignored by backends without a DFA cache; under the
    hybrid backend it caps each lazy-DFA group).
    """

    max_stream_bytes: int = 1 << 20
    max_in_flight: int = 8
    dfa_max_states: Optional[int] = None


@dataclass(frozen=True)
class ScanOutcome:
    """One successfully served scan."""

    tenant: str
    reports: Tuple[Report, ...]
    offset: int
    checkpoint: Optional[Checkpoint]
    served_by: str
    fallback: bool
    latency_s: float

    def report_rows(self) -> List[Tuple[int, str, Optional[str]]]:
        """(offset, ste_id, report_code) rows, for differential checks."""
        return [(r.offset, r.ste_id, r.report_code) for r in self.reports]


@dataclass
class ServiceMetrics:
    """Service-wide counters (per-tenant breakdowns live on the
    tenants; see :meth:`ScanService.metrics_snapshot`)."""

    submitted: int = 0
    admitted: int = 0
    completed: int = 0
    failed: int = 0
    shed: int = 0
    oversized: int = 0
    timeouts: int = 0
    breaker_trips: int = 0
    breaker_recoveries: int = 0
    worker_restarts: int = 0
    fallback_scans: int = 0
    reloads: int = 0
    pool_respawns: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


_TENANT_COUNTERS = (
    "submitted",
    "completed",
    "failed",
    "shed",
    "oversized",
    "timeouts",
    "fallback_scans",
    "breaker_trips",
    "breaker_recoveries",
)


class _TenantState:
    """Everything the service holds per registered tenant."""

    def __init__(
        self,
        name: str,
        fingerprint: str,
        engine: CacheAutomatonEngine,
        limits: TenantLimits,
        breaker: CircuitBreaker,
    ):
        self.name = name
        self.fingerprint = fingerprint
        self.engine = engine
        self.limits = limits
        self.breaker = breaker
        self.queue: Deque["_Request"] = deque()
        self.in_flight = 0
        self.counters: Dict[str, int] = {key: 0 for key in _TENANT_COUNTERS}
        self._fallback = None
        #: Registration kwargs kept verbatim so worker processes can
        #: rebuild this tenant's engine (process-pool execution).
        self.registration: Dict[str, object] = {}
        #: Lazily built picklable spec + published shared-memory block
        #: for the process pool; reset on hot-reload.
        self.worker_spec: Optional[TenantWorkerSpec] = None
        self.shared: Optional[SharedTables] = None
        #: Chaos hooks (fault-injection harness): raise ``chaos_error``
        #: on the next ``chaos_faults`` primary scans; sleep
        #: ``chaos_delay`` seconds per chunk (a "slow tenant").
        self.chaos_faults = 0
        self.chaos_error: Exception = ReproError("injected fault")
        self.chaos_delay = 0.0

    def fallback(self):
        """The tenant's golden-fallback backend (built on first use).

        The reference interpreter runs from the automaton alone, so it
        cannot be poisoned by whatever degraded the primary."""
        if self._fallback is None:
            self._fallback = create_backend(
                "golden-interpreter", self.engine.artifact
            )
        return self._fallback

    def reset_backend_state(self):
        self._fallback = None
        self.worker_spec = None
        self.close_shared()

    def close_shared(self):
        if self.shared is not None:
            shared, self.shared = self.shared, None
            shared.close()


class _Request:
    """One admitted scan request moving through the queue."""

    __slots__ = (
        "tenant",
        "data",
        "resume",
        "deadline_at",
        "future",
        "submitted_at",
    )

    def __init__(self, tenant, data, resume, deadline_at, future, submitted_at):
        self.tenant = tenant
        self.data = data
        self.resume = resume
        self.deadline_at = deadline_at
        self.future = future
        self.submitted_at = submitted_at


def tenant_fingerprint(
    patterns: Sequence[str],
    *,
    design: DesignPoint,
    backend: Optional[str],
    stride,
    backend_options: Optional[Dict[str, object]],
) -> str:
    """Content hash of a tenant's registration; a changed fingerprint
    on re-registration triggers an engine hot-reload."""
    digest = hashlib.sha256()
    for pattern in patterns:
        digest.update(pattern.encode("utf-8"))
        digest.update(b"\x00")
    digest.update(design.name.encode("utf-8"))
    digest.update(repr(backend).encode("utf-8"))
    digest.update(repr(stride).encode("utf-8"))
    digest.update(
        repr(sorted((backend_options or {}).items())).encode("utf-8")
    )
    return digest.hexdigest()


class ScanService:
    """Long-lived multi-tenant scan service (asyncio).

    Lifecycle: construct → :meth:`register` tenants (also allowed while
    running) → ``await start()`` → ``await scan(...)`` from any number
    of client coroutines → ``await stop()``.  ``async with`` does
    start/stop automatically.
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        scan_workers: int = 0,
        max_queue: int = DEFAULT_MAX_QUEUE,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        default_deadline: Optional[float] = None,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 1.0,
        cache="auto",
        clock: Callable[[], float] = time.monotonic,
        mp_method: Optional[str] = None,
    ):
        if workers < 1:
            raise ReproError(f"need at least one worker, got {workers}")
        if scan_workers < 0:
            raise ReproError(
                f"scan_workers must be >= 0, got {scan_workers}"
            )
        if max_queue < 1:
            raise ReproError(f"max_queue must be >= 1, got {max_queue}")
        if chunk_bytes < 1:
            raise ReproError(f"chunk_bytes must be >= 1, got {chunk_bytes}")
        self.worker_count = workers
        #: 0 = scan in-loop (PR 8 semantics, one core); N > 0 = dispatch
        #: primary-tier chunks to N persistent worker processes.
        self.scan_workers = scan_workers
        self._procpool: Optional[ProcPoolScanExecutor] = None
        if scan_workers > 0:
            self._procpool = ProcPoolScanExecutor(
                scan_workers, mp_method=mp_method
            )
        self.max_queue = max_queue
        self.chunk_bytes = chunk_bytes
        self.default_deadline = default_deadline
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self._cache = cache
        self._clock = clock
        self.metrics = ServiceMetrics()
        self.events = BoundedEventLog()
        self._tenants: Dict[str, _TenantState] = {}
        self._rr: List[str] = []
        self._rr_index = 0
        self._queued = 0
        self._executing = 0
        self._latencies: Deque[float] = deque(maxlen=LATENCY_SAMPLE_LIMIT)
        self._cond: Optional[asyncio.Condition] = None
        self._executing_requests: List[_Request] = []
        self._workers: Dict[int, asyncio.Task] = {}
        self._accepting = False
        self._shutdown = False
        self._started = False

    # -- tenant registration -----------------------------------------------

    def register(
        self,
        name: str,
        patterns: Sequence[str],
        *,
        limits: Optional[TenantLimits] = None,
        design: DesignPoint = CA_P,
        backend: Optional[str] = None,
        stride=None,
        backend_options: Optional[Dict[str, object]] = None,
        compile_jobs=None,
    ) -> bool:
        """Register (or hot-reload) a tenant's pattern set.

        The engine is built through the artifact cache, so re-serving a
        previously compiled pattern set is a warm start.  Registering an
        existing tenant with an unchanged fingerprint is a no-op
        (returns ``False``); a changed fingerprint swaps in a freshly
        built engine atomically between requests (returns ``True``) —
        note that checkpoints issued by the old engine do not carry
        over.  ``limits.dfa_max_states`` becomes the lazy-DFA backend's
        ``max_states`` cache budget when that backend is selected; under
        the hybrid backend the budget applies to every lazy-DFA group
        (other substrates ignore the option).
        """
        patterns = list(patterns)
        if not patterns:
            raise ReproError(f"tenant {name!r}: empty pattern set")
        limits = limits or TenantLimits()
        options = dict(backend_options or {})
        if (
            limits.dfa_max_states is not None
            and backend is not None
            and resolve_backend_name(backend) in ("lazy-dfa", "hybrid")
        ):
            options.setdefault("max_states", limits.dfa_max_states)
        fingerprint = tenant_fingerprint(
            patterns,
            design=design,
            backend=backend,
            stride=stride,
            backend_options=options,
        )
        existing = self._tenants.get(name)
        if existing is not None and existing.fingerprint == fingerprint:
            existing.limits = limits
            return False
        engine = CacheAutomatonEngine.from_patterns(
            patterns,
            design=design,
            cache=self._cache,
            backend=backend,
            stride=stride,
            backend_options=options or None,
            compile_jobs=compile_jobs,
        )
        registration = {
            "patterns": tuple(patterns),
            "design": design,
            "backend": backend,
            "stride": stride,
            "backend_options": options,
            "compile_jobs": compile_jobs,
        }
        if existing is not None:
            existing.fingerprint = fingerprint
            existing.engine = engine
            existing.limits = limits
            existing.breaker = self._new_breaker()
            existing.registration = registration
            existing.reset_backend_state()
            self.metrics.reloads += 1
            self.events.append(
                f"tenant {name!r} hot-reloaded "
                f"(fingerprint {fingerprint[:12]}, "
                f"tier {engine.health().tier})"
            )
            return True
        state = _TenantState(
            name, fingerprint, engine, limits, self._new_breaker()
        )
        state.registration = registration
        self._tenants[name] = state
        self._rr.append(name)
        self.events.append(
            f"tenant {name!r} registered ({len(patterns)} pattern(s), "
            f"tier {engine.health().tier})"
        )
        return True

    def _new_breaker(self) -> CircuitBreaker:
        return CircuitBreaker(
            threshold=self.breaker_threshold,
            cooldown=self.breaker_cooldown,
            clock=self._clock,
        )

    def tenant_names(self) -> List[str]:
        return list(self._rr)

    def tenant_engine(self, name: str) -> CacheAutomatonEngine:
        return self._tenant(name).engine

    def _tenant(self, name: str) -> _TenantState:
        state = self._tenants.get(name)
        if state is None:
            raise UnknownTenant(name)
        return state

    # -- chaos hooks (fault-injection harness) ------------------------------

    def inject_scan_faults(
        self, tenant: str, count: int, error: Optional[Exception] = None
    ) -> None:
        """Make the tenant's next ``count`` primary scans raise.

        Chaos hook for the load-generation harness and tests: the
        injected failures exercise the breaker trip → golden-fallback →
        recovery path deterministically.  Fallback-tier scans are never
        affected.
        """
        state = self._tenant(tenant)
        state.chaos_faults = count
        if error is not None:
            state.chaos_error = error

    def set_scan_delay(self, tenant: str, delay_s: float) -> None:
        """Chaos hook: sleep ``delay_s`` before each of the tenant's
        chunks — a "slow tenant" whose requests burn their deadlines
        without starving other tenants (workers yield while sleeping).
        """
        self._tenant(tenant).chaos_delay = max(0.0, delay_s)

    def crash_scan_process(self) -> Optional[int]:
        """Chaos hook: SIGKILL one scan worker *process* (returns its
        pid, or ``None`` without a process pool).

        The next chunk dispatched to the broken pool fails with a
        retryable :class:`WorkerCrashed` and the pool is respawned —
        the process-level twin of :meth:`crash_worker`.
        """
        if self._procpool is None:
            return None
        return self._procpool.crash_one()

    def crash_worker(self, index: int = 0) -> bool:
        """Chaos hook: kill one worker task mid-flight.

        Its in-flight request (if any) fails with a retryable
        :class:`WorkerCrashed`; the supervisor restarts the worker and
        counts it.  Returns ``False`` when no such worker exists.
        """
        task = self._workers.get(index)
        if task is None or task.done():
            return False
        task.cancel()
        return True

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        if self._started:
            raise ReproError("service already started")
        self._started = True
        self._accepting = True
        self._cond = asyncio.Condition()
        if self._procpool is not None:
            self._procpool.start()
        for index in range(self.worker_count):
            self._spawn_worker(index)
        self.events.append(
            f"service started: {self.worker_count} worker(s), "
            f"{self.scan_workers} scan process(es), "
            f"queue bound {self.max_queue}, chunk {self.chunk_bytes} B"
        )

    def _spawn_worker(self, index: int) -> None:
        task = asyncio.get_running_loop().create_task(
            self._worker_loop(), name=f"scan-worker-{index}"
        )
        self._workers[index] = task
        task.add_done_callback(
            lambda done, index=index: self._on_worker_done(index, done)
        )

    def _on_worker_done(self, index: int, task: asyncio.Task) -> None:
        if self._shutdown:
            return
        # Any exit before shutdown is a crash (cancellation included):
        # count it, log it, restart the slot.
        self.metrics.worker_restarts += 1
        self.events.append(f"worker {index} crashed; restarted")
        self._spawn_worker(index)
        asyncio.get_running_loop().create_task(self._poke())

    async def _poke(self) -> None:
        # Wake drain waiters after out-of-band state changes (a crashed
        # worker cannot notify on its own way out).
        async with self._cond:
            self._cond.notify_all()

    async def stop(self, *, drain_timeout: Optional[float] = None) -> None:
        """Graceful drain: stop admitting, finish (or deadline-out)
        pending work, join the workers.

        New requests are rejected with :class:`ServiceClosed` the moment
        this is called.  Queued and in-flight requests run to
        completion; if ``drain_timeout`` seconds pass first, every
        pending request's deadline is forced to *now*, so in-flight
        scans are interrupted at their next chunk boundary with a
        :class:`DeadlineExceeded` carrying their partial progress.  Scan
        worker pools and shared-memory blocks are per-call and closed by
        their context managers (:class:`~repro.sim.shard.SharedTables`),
        so once the queue is empty the service holds no OS resources
        beyond the engines themselves.
        """
        if not self._started or self._shutdown:
            return
        self._accepting = False
        self.events.append("drain started: admission closed")
        async with self._cond:
            self._cond.notify_all()
            try:
                await asyncio.wait_for(
                    self._cond.wait_for(self._idle), drain_timeout
                )
            except asyncio.TimeoutError:
                expired = self._expire_pending()
                self.events.append(
                    f"drain timeout: deadlined {expired} pending request(s)"
                )
                await self._cond.wait_for(self._idle)
            self._shutdown = True
            self._cond.notify_all()
        await asyncio.gather(
            *list(self._workers.values()), return_exceptions=True
        )
        if self._procpool is not None:
            self._procpool.shutdown()
        for state in self._tenants.values():
            state.close_shared()
        self.events.append("service stopped: drain complete")

    def _idle(self) -> bool:
        return self._queued == 0 and self._executing == 0

    def _expire_pending(self) -> int:
        now = self._clock()
        expired = 0
        for state in self._tenants.values():
            for request in state.queue:
                request.deadline_at = now
                expired += 1
        # In-flight requests read ``deadline_at`` at every chunk
        # boundary, so flipping it interrupts them too.
        for request in self._executing_requests:
            request.deadline_at = now
            expired += 1
        return expired

    async def __aenter__(self) -> "ScanService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- admission ----------------------------------------------------------

    async def scan(
        self,
        tenant: str,
        data: bytes,
        *,
        deadline: Optional[float] = None,
        resume: Optional[Checkpoint] = None,
    ) -> ScanOutcome:
        """Admit one scan request and await its outcome.

        ``deadline`` is the request's time budget in seconds (``None``
        uses the service default; that too being ``None`` means
        unbounded).  ``resume`` continues a previous stream — pass the
        checkpoint from an earlier outcome (or from a
        :class:`DeadlineExceeded`) together with the remaining bytes.

        Raises the typed service errors documented in
        :mod:`repro.service.errors`; transient ones
        (``Overloaded``, ``WorkerCrashed``) carry ``retryable=True``
        for the backoff-retrying client.
        """
        async with self._cond_or_closed():
            future = self._admit(tenant, data, deadline, resume)
            self._cond.notify()
        return await future

    def _cond_or_closed(self) -> asyncio.Condition:
        if self._cond is None:
            raise ServiceClosed("service was never started")
        return self._cond

    def _admit(self, tenant, data, deadline, resume) -> "asyncio.Future":
        self.metrics.submitted += 1
        if not self._accepting:
            raise ServiceClosed()
        state = self._tenant(tenant)
        state.counters["submitted"] += 1
        require_bytes(data, f"scan stream for tenant {tenant!r}")
        if len(data) > state.limits.max_stream_bytes:
            self.metrics.oversized += 1
            state.counters["oversized"] += 1
            raise StreamTooLarge(
                tenant, len(data), state.limits.max_stream_bytes
            )
        if state.in_flight >= state.limits.max_in_flight:
            self.metrics.shed += 1
            state.counters["shed"] += 1
            raise Overloaded(
                tenant,
                f"tenant in-flight limit reached "
                f"({state.limits.max_in_flight})",
            )
        if self._queued >= self.max_queue:
            self.metrics.shed += 1
            state.counters["shed"] += 1
            raise Overloaded(
                tenant, f"admission queue full ({self.max_queue})"
            )
        if deadline is None:
            deadline = self.default_deadline
        now = self._clock()
        deadline_at = None if deadline is None else now + deadline
        future = asyncio.get_running_loop().create_future()
        request = _Request(tenant, data, resume, deadline_at, future, now)
        state.queue.append(request)
        state.in_flight += 1
        self._queued += 1
        self.metrics.admitted += 1
        return future

    # -- execution ----------------------------------------------------------

    async def _worker_loop(self) -> None:
        while True:
            async with self._cond:
                request = None
                while True:
                    request = self._pop_next()
                    if request is not None:
                        self._executing += 1
                        break
                    if self._shutdown:
                        return
                    await self._cond.wait()
            try:
                await self._execute(request)
            finally:
                # Wake drain waiters and idle peers even if _execute
                # re-raised a cancellation (shield the lock handshake
                # from the pending cancellation so the notify lands).
                await asyncio.shield(self._poke())

    def _pop_next(self) -> Optional[_Request]:
        """Fair dequeue: round-robin across tenants with pending work."""
        count = len(self._rr)
        for step in range(1, count + 1):
            index = (self._rr_index + step) % count
            state = self._tenants[self._rr[index]]
            if state.queue:
                self._rr_index = index
                self._queued -= 1
                return state.queue.popleft()
        return None

    async def _execute(self, request: _Request) -> None:
        state = self._tenants[request.tenant]
        self._executing_requests.append(request)
        try:
            outcome = await self._scan_request(state, request)
        except asyncio.CancelledError:
            self.metrics.failed += 1
            state.counters["failed"] += 1
            if not request.future.done():
                request.future.set_exception(WorkerCrashed(state.name))
            raise
        except DeadlineExceeded as error:
            self.metrics.timeouts += 1
            state.counters["timeouts"] += 1
            if not request.future.done():
                request.future.set_exception(error)
        except Exception as error:
            self.metrics.failed += 1
            state.counters["failed"] += 1
            if not request.future.done():
                request.future.set_exception(error)
        else:
            self.metrics.completed += 1
            state.counters["completed"] += 1
            self._latencies.append(outcome.latency_s)
            if not request.future.done():
                request.future.set_result(outcome)
        finally:
            state.in_flight -= 1
            self._executing -= 1
            self._executing_requests.remove(request)

    async def _scan_request(
        self, state: _TenantState, request: _Request
    ) -> ScanOutcome:
        """Chunked scan with deadline checks at every chunk boundary."""
        breaker = state.breaker
        on_primary = breaker.allow_primary()
        if on_primary:
            backend = state.engine.backend
            health_before = self._health_size(state.engine)
        else:
            backend = state.fallback()
            self.metrics.fallback_scans += 1
            state.counters["fallback_scans"] += 1
        # Primary-tier chunks go to the process pool when one is
        # configured; the golden-fallback tier always scans in-loop.
        pool = self._procpool if on_primary else None
        spec = self._tenant_worker_spec(state) if pool is not None else None
        loop = asyncio.get_running_loop() if pool is not None else None
        data = request.data
        checkpoint = request.resume
        base = 0 if checkpoint is None else checkpoint.symbols_processed
        reports: List[Report] = []
        position = 0
        try:
            while position < len(data):
                if (
                    request.deadline_at is not None
                    and self._clock() >= request.deadline_at
                ):
                    raise DeadlineExceeded(
                        state.name,
                        offset=base + position,
                        reports=reports,
                        checkpoint=checkpoint,
                    )
                if on_primary and state.chaos_faults > 0:
                    state.chaos_faults -= 1
                    raise state.chaos_error
                if state.chaos_delay:
                    await asyncio.sleep(state.chaos_delay)
                piece = data[position : position + self.chunk_bytes]
                if pool is not None:
                    result = await pool.scan_chunk(
                        loop, spec, backend, piece, checkpoint
                    )
                else:
                    result = backend.scan(piece, resume=checkpoint)
                checkpoint = result.checkpoint
                reports.extend(result.reports)
                position += len(piece)
                # Yield between chunks: this is what keeps deadlines,
                # fairness, and drain responsive on one event loop.
                await asyncio.sleep(0)
        except DeadlineExceeded:
            raise
        except asyncio.CancelledError:
            raise
        except WorkerCrashed:
            # A dead scan process is an infrastructure fault, not a
            # tenant fault: surface the retryable error (the pool has
            # already respawned) without charging the breaker.
            self.events.append(
                f"scan process died serving tenant {state.name!r}; "
                "pool respawned"
            )
            raise
        except Exception:
            if on_primary and breaker.record_failure():
                self._note_trip(state)
            raise
        if on_primary:
            degrades = self._health_size(state.engine) - health_before
            if degrades > 0:
                self.events.append(
                    f"tenant {state.name!r}: {degrades} engine degrade "
                    "event(s) observed during scan"
                )
                if breaker.record_failure(degrades):
                    self._note_trip(state)
            elif breaker.record_success():
                self._note_recovery(state)
        return ScanOutcome(
            tenant=state.name,
            reports=tuple(reports),
            offset=base + position,
            checkpoint=checkpoint,
            served_by=backend.name,
            fallback=not on_primary,
            latency_s=self._clock() - request.submitted_at,
        )

    def _tenant_worker_spec(self, state: _TenantState) -> TenantWorkerSpec:
        """The tenant's picklable spec for worker processes (cached).

        Built on first process-pool scan: backends exposing
        ``share_tables``/``materialise_raw`` (lazy-DFA) additionally
        publish their tables through one shared-memory block, held for
        the tenant's lifetime and released on hot-reload or drain.
        """
        if state.worker_spec is None:
            registration = state.registration
            options = dict(registration.get("backend_options") or {})
            backend = state.engine.backend
            shm_meta = None
            if hasattr(backend, "share_tables") and hasattr(
                backend, "materialise_raw"
            ):
                state.shared = SharedTables(backend.share_tables())
                shm_meta = state.shared.meta
            state.worker_spec = TenantWorkerSpec(
                tenant=state.name,
                fingerprint=state.fingerprint,
                patterns=tuple(registration["patterns"]),
                design=registration["design"],
                backend=registration["backend"],
                stride=registration["stride"],
                backend_options=tuple(sorted(options.items())),
                compile_jobs=registration["compile_jobs"],
                cache=worker_cache_spec(self._cache),
                dfa_max_states=options.get("max_states"),
                shm_meta=shm_meta,
            )
        return state.worker_spec

    @staticmethod
    def _health_size(engine: CacheAutomatonEngine) -> int:
        health = engine.health()
        return len(health.events) + health.events_dropped

    def _note_trip(self, state: _TenantState) -> None:
        self.metrics.breaker_trips += 1
        state.counters["breaker_trips"] += 1
        self.events.append(
            f"circuit OPEN for tenant {state.name!r} after "
            f"{state.breaker.failures} failure signal(s); "
            "golden-fallback tier serving"
        )

    def _note_recovery(self, state: _TenantState) -> None:
        self.metrics.breaker_recoveries += 1
        state.counters["breaker_recoveries"] += 1
        self.events.append(
            f"circuit CLOSED for tenant {state.name!r}: "
            "recovery probe succeeded"
        )

    # -- observability -------------------------------------------------------

    def breaker_state(self, tenant: str) -> str:
        return self._tenant(tenant).breaker.state

    def latencies(self) -> Tuple[float, ...]:
        """Latency samples (seconds) of completed requests, in order."""
        return tuple(self._latencies)

    def metrics_snapshot(self) -> Dict[str, object]:
        """Counters, queue gauges, breaker states, and recent events."""
        if self._procpool is not None:
            self.metrics.pool_respawns = self._procpool.respawns
        return {
            **self.metrics.as_dict(),
            "scan_workers": self.scan_workers,
            "queued": self._queued,
            "executing": self._executing,
            "tenants": {
                name: {
                    **state.counters,
                    "in_flight": state.in_flight,
                    "breaker": state.breaker.state,
                }
                for name, state in self._tenants.items()
            },
            "events_dropped": self.events.dropped,
            "events": list(self.events),
        }
