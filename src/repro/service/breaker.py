"""Per-tenant circuit breaker for the scan service.

Classic three-state breaker guarding one tenant's *primary* backend:

* ``closed`` — healthy; primary serves traffic.  Failures and backend
  degrade events accumulate; reaching ``threshold`` trips the breaker.
* ``open`` — tripped; the service routes the tenant's requests to the
  golden-fallback tier (the reference interpreter, which cannot be
  poisoned by a bad artifact or a thrashing DFA cache).  After
  ``cooldown`` seconds the next request is allowed to probe the
  primary.
* ``half-open`` — one probe in flight; a success closes the breaker
  (recovery), a failure re-opens it and restarts the cooldown.

"Failure" is anything the primary raises; "degrade" is a new entry in
the engine's :meth:`~repro.engine.CacheAutomatonEngine.health` event
log observed after a scan (split-chunk rescans, quarantines, stride
degrades) — both feed the same counter, so a backend that limps
through requests while continuously degrading still trips.  A clean
success (no exception, no new health events) resets the counter.

The clock is injected so tests drive state transitions
deterministically.
"""

from __future__ import annotations

import time
from typing import Callable

#: Breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Failure-counting breaker with cooldown-gated recovery probes."""

    def __init__(
        self,
        *,
        threshold: int = 3,
        cooldown: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self.state = CLOSED
        self.failures = 0
        self.trips = 0
        self.recoveries = 0
        self._opened_at = 0.0

    def allow_primary(self) -> bool:
        """Should the next request use the primary backend?

        While open, returns ``False`` until the cooldown elapses; the
        first call after that transitions to half-open and lets one
        probe through.
        """
        if self.state == OPEN:
            if self._clock() - self._opened_at >= self.cooldown:
                self.state = HALF_OPEN
                return True
            return False
        return True

    def record_success(self) -> bool:
        """A clean primary scan; returns True when this was the
        half-open probe that closed the breaker (a recovery)."""
        recovered = self.state == HALF_OPEN
        self.state = CLOSED
        self.failures = 0
        if recovered:
            self.recoveries += 1
        return recovered

    def record_failure(self, weight: int = 1) -> bool:
        """A primary failure (or ``weight`` degrade events); returns
        True when this call tripped the breaker open."""
        self.failures += weight
        should_open = (
            self.state == HALF_OPEN or self.failures >= self.threshold
        )
        if should_open and self.state != OPEN:
            self.state = OPEN
            self._opened_at = self._clock()
            self.trips += 1
            return True
        if should_open:
            # Already open (e.g. degrade events observed on the probe
            # that failed) — refresh the cooldown window.
            self._opened_at = self._clock()
        return False
