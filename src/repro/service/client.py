"""Client-side retry policy: exponential backoff with jitter.

The service sheds load with typed, *retryable* rejections
(:class:`~repro.service.errors.Overloaded`,
:class:`~repro.service.errors.WorkerCrashed`); this module is the
matching client discipline — capped exponential backoff with equal
jitter (half the delay deterministic, half uniform-random) so a burst
of shed clients does not resubmit in lockstep and re-overload the
queue.  Non-retryable errors (deadline, oversize, unknown tenant,
closed service) propagate immediately.

The RNG and the sleep function are injectable, so tests count and
bound the backoff sequence deterministically.
"""

from __future__ import annotations

import asyncio
import random
from typing import Awaitable, Callable, Optional

from repro.errors import ReproError
from repro.service.errors import ServiceError
from repro.service.service import ScanOutcome, ScanService
from repro.sim.golden import Checkpoint


class RetryingClient:
    """Submit scans through a :class:`ScanService`, retrying retryable
    rejections with capped exponential backoff + jitter."""

    def __init__(
        self,
        service: ScanService,
        *,
        max_attempts: int = 4,
        base_delay: float = 0.02,
        max_delay: float = 0.5,
        rng: Optional[random.Random] = None,
        sleep: Callable[[float], Awaitable[None]] = asyncio.sleep,
    ):
        if max_attempts < 1:
            raise ReproError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        self.service = service
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self._rng = rng or random.Random()
        self._sleep = sleep
        #: Total backoff-retries performed (feeds the run table).
        self.retries = 0
        #: Requests abandoned after exhausting every attempt.
        self.exhausted = 0

    def backoff_delay(self, attempt: int) -> float:
        """Delay before retry ``attempt`` (0-based): equal jitter over a
        capped exponential — ``d/2 + uniform(0, d/2)`` with
        ``d = min(max_delay, base_delay * 2**attempt)``."""
        ceiling = min(self.max_delay, self.base_delay * (2 ** attempt))
        return ceiling * 0.5 + ceiling * 0.5 * self._rng.random()

    async def scan(
        self,
        tenant: str,
        data: bytes,
        *,
        deadline: Optional[float] = None,
        resume: Optional[Checkpoint] = None,
    ) -> ScanOutcome:
        """One logical scan, retried across transient rejections."""
        attempt = 0
        while True:
            try:
                return await self.service.scan(
                    tenant, data, deadline=deadline, resume=resume
                )
            except ServiceError as error:
                if not error.retryable:
                    raise
                attempt += 1
                if attempt >= self.max_attempts:
                    self.exhausted += 1
                    raise
                self.retries += 1
                await self._sleep(self.backoff_delay(attempt - 1))
