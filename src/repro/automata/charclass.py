"""Parser for character-class (symbol-set) expressions.

ANML labels STEs with expressions in a regex-character-class syntax, e.g.
``[a-z]``, ``[\\x00-\\x1f]``, ``[^\\n]``, ``*`` (match everything) or a bare
character.  The same syntax appears inside bracket expressions of regular
expressions, so the regex parser reuses :func:`parse_class_body`.
"""

from __future__ import annotations

from typing import Tuple

from repro.automata.symbols import SymbolSet
from repro.errors import SymbolSetError

#: Escape shorthands shared with the regex syntax.
_SHORTHAND = {
    "d": SymbolSet.from_range("0", "9"),
    "w": (
        SymbolSet.from_range("a", "z")
        | SymbolSet.from_range("A", "Z")
        | SymbolSet.from_range("0", "9")
        | SymbolSet.single("_")
    ),
    "s": SymbolSet.from_string(" \t\n\r\f\v"),
}
_SHORTHAND["D"] = _SHORTHAND["d"].complement()
_SHORTHAND["W"] = _SHORTHAND["w"].complement()
_SHORTHAND["S"] = _SHORTHAND["s"].complement()

_SIMPLE_ESCAPES = {
    "n": ord("\n"),
    "r": ord("\r"),
    "t": ord("\t"),
    "f": ord("\f"),
    "v": ord("\v"),
    "a": 0x07,
    "e": 0x1B,
    "0": 0x00,
}


def parse_escape(expression: str, position: int) -> Tuple[SymbolSet, int]:
    """Parse the escape starting at ``expression[position]`` (the backslash).

    Returns the symbol set it denotes and the index just past the escape.
    Handles ``\\xNN`` hex escapes, shorthand classes (``\\d`` etc.), control
    escapes (``\\n`` etc.), and escaped literals (``\\.`` -> ``.``).
    """
    if expression[position] != "\\":
        raise SymbolSetError(f"expected escape at offset {position} in {expression!r}")
    if position + 1 >= len(expression):
        raise SymbolSetError(f"dangling backslash in {expression!r}")
    marker = expression[position + 1]
    if marker == "x":
        hex_digits = expression[position + 2 : position + 4]
        if len(hex_digits) != 2:
            raise SymbolSetError(f"truncated \\x escape in {expression!r}")
        try:
            value = int(hex_digits, 16)
        except ValueError:
            raise SymbolSetError(f"bad \\x escape '\\x{hex_digits}' in {expression!r}")
        return SymbolSet.single(value), position + 4
    if marker in _SHORTHAND:
        return _SHORTHAND[marker], position + 2
    if marker in _SIMPLE_ESCAPES:
        return SymbolSet.single(_SIMPLE_ESCAPES[marker]), position + 2
    if ord(marker) < 256:
        return SymbolSet.single(marker), position + 2
    raise SymbolSetError(f"non-byte escape {marker!r} in {expression!r}")


def parse_class_body(
    expression: str, position: int, terminator: str = "]"
) -> Tuple[SymbolSet, int]:
    """Parse the inside of a bracket expression up to ``terminator``.

    ``position`` points just past the opening bracket.  Supports leading
    ``^`` negation, ranges ``a-z``, escapes, and literal ``]`` as the first
    member.  Returns the symbol set and the index just past the terminator.
    """
    negate = False
    if position < len(expression) and expression[position] == "^":
        negate = True
        position += 1
    members = SymbolSet.none()
    first = True
    while True:
        if position >= len(expression):
            raise SymbolSetError(f"unterminated class in {expression!r}")
        character = expression[position]
        if character == terminator and not first:
            position += 1
            break
        first = False
        if character == "\\":
            atom, position = parse_escape(expression, position)
        else:
            if ord(character) > 255:
                raise SymbolSetError(f"non-byte character {character!r} in class")
            atom = SymbolSet.single(character)
            position += 1
        # Range: atom must be a singleton and a '-' with a right endpoint follows.
        if (
            position + 1 < len(expression)
            and expression[position] == "-"
            and expression[position + 1] != terminator
            and atom.cardinality() == 1
        ):
            position += 1  # consume '-'
            if expression[position] == "\\":
                upper, position = parse_escape(expression, position)
            else:
                if ord(expression[position]) > 255:
                    raise SymbolSetError("non-byte range endpoint")
                upper = SymbolSet.single(expression[position])
                position += 1
            if upper.cardinality() != 1:
                raise SymbolSetError(f"range endpoint is a class in {expression!r}")
            low = next(iter(atom))
            high = next(iter(upper))
            if low > high:
                raise SymbolSetError(f"reversed range \\x{low:02x}-\\x{high:02x}")
            atom = SymbolSet.from_range(low, high)
        members = members | atom
    if negate:
        members = members.complement()
    return members, position


def parse_symbol_set(expression: str) -> SymbolSet:
    """Parse a complete ANML symbol-set expression.

    Accepts ``*`` (wildcard), ``.`` (any byte, per ANML convention), a
    bracket expression ``[...]``, an escape, or a single literal character.
    """
    if expression == "":
        raise SymbolSetError("empty symbol-set expression")
    if expression == "*" or expression == ".":
        return SymbolSet.any()
    if expression.startswith("["):
        symbols, end = parse_class_body(expression, 1)
        if end != len(expression):
            raise SymbolSetError(f"trailing junk after class in {expression!r}")
        return symbols
    if expression.startswith("\\"):
        symbols, end = parse_escape(expression, 0)
        if end != len(expression):
            raise SymbolSetError(f"trailing junk after escape in {expression!r}")
        return symbols
    if len(expression) == 1 and ord(expression) < 256:
        return SymbolSet.single(expression)
    raise SymbolSetError(f"cannot parse symbol-set expression {expression!r}")
