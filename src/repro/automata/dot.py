"""Graphviz DOT export for automata and compiled mappings.

Pure text generation — no graphviz dependency; feed the output to
``dot -Tsvg`` to visualise.  Two views:

* :func:`automaton_to_dot` — the logical NFA: start states as double
  circles with an inbound arrow, reporting states shaded, labels showing
  the symbol set;
* :func:`mapping_to_dot` — the physical view: one cluster per partition
  (grouped by way), cross-partition edges coloured by the switch that
  carries them (within-way G1 vs cross-way G4).
"""

from __future__ import annotations

from typing import List, Optional

from repro.automata.anml import HomogeneousAutomaton, StartKind
from repro.compiler.mapping import Mapping

_EDGE_COLOURS = {"local": "black", "g1": "blue", "g4": "red"}


def _quote(identifier: str) -> str:
    escaped = identifier.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def _node_line(automaton: HomogeneousAutomaton, ste_id: str) -> str:
    ste = automaton.ste(ste_id)
    label = f"{ste_id}\\n{ste.symbols.canonical_expression()}"
    attributes = [f"label={_quote(label)}"]
    if ste.start is not StartKind.NONE:
        attributes.append("shape=doublecircle")
    else:
        attributes.append("shape=circle")
    if ste.reporting:
        attributes.append("style=filled")
        attributes.append('fillcolor="lightgoldenrod"')
    return f"  {_quote(ste_id)} [{', '.join(attributes)}];"


def automaton_to_dot(
    automaton: HomogeneousAutomaton, *, max_states: Optional[int] = 500
) -> str:
    """Render the automaton as a DOT digraph.

    ``max_states`` guards against accidentally dumping a 100K-state
    machine; pass None to disable.
    """
    if max_states is not None and len(automaton) > max_states:
        raise ValueError(
            f"automaton has {len(automaton)} states; raise max_states to "
            "render it anyway"
        )
    lines: List[str] = [
        f"digraph {_quote(automaton.automaton_id)} {{",
        "  rankdir=LR;",
        '  node [fontsize=10, margin="0.05,0.02"];',
    ]
    for ste_id in automaton.ste_ids():
        lines.append(_node_line(automaton, ste_id))
        ste = automaton.ste(ste_id)
        if ste.start is not StartKind.NONE:
            anchor = f"__start_{ste_id}"
            kind = "SoD" if ste.start is StartKind.START_OF_DATA else "*"
            lines.append(
                f"  {_quote(anchor)} [shape=point, label=\"\", "
                f'xlabel="{kind}"];'
            )
            lines.append(f"  {_quote(anchor)} -> {_quote(ste_id)};")
    for source, target in automaton.edges():
        lines.append(f"  {_quote(source)} -> {_quote(target)};")
    lines.append("}")
    return "\n".join(lines)


def mapping_to_dot(mapping: Mapping, *, max_states: Optional[int] = 500) -> str:
    """Render a compiled mapping: clusters per partition, switch-coloured
    cross-partition edges (blue = within-way G1, red = cross-way G4)."""
    automaton = mapping.automaton
    if max_states is not None and len(automaton) > max_states:
        raise ValueError(
            f"mapping holds {len(automaton)} states; raise max_states to "
            "render it anyway"
        )
    lines: List[str] = [
        f"digraph {_quote(automaton.automaton_id + '@' + mapping.design.name)} {{",
        "  rankdir=LR;",
        "  compound=true;",
        '  node [fontsize=10, margin="0.05,0.02"];',
    ]
    for partition in mapping.partitions:
        lines.append(f"  subgraph cluster_p{partition.index} {{")
        lines.append(
            f'    label="partition {partition.index} (way {partition.way})";'
        )
        lines.append('    style="rounded";')
        for ste_id in partition.ste_ids:
            lines.append("  " + _node_line(automaton, ste_id))
        lines.append("  }")
    for source, target in automaton.edges():
        kind = mapping.edge_kind(source, target)
        colour = _EDGE_COLOURS[kind]
        attributes = f' [color={colour}]' if kind != "local" else ""
        lines.append(f"  {_quote(source)} -> {_quote(target)}{attributes};")
    lines.append("}")
    return "\n".join(lines)
