"""Automata substrate: symbol sets, NFA models, constructions, and passes.

The central type is :class:`~repro.automata.anml.HomogeneousAutomaton`,
the ANML-style model the Cache Automaton hardware executes; classical
NFAs and DFAs support construction front-ends, CPU baselines, and
equivalence oracles.
"""

from repro.automata.anml import HomogeneousAutomaton, StartKind, Ste, from_anml, merge, to_anml
from repro.automata.circuit_anml import circuit_from_anml, circuit_to_anml
from repro.automata.components import ComponentStats, component_stats, connected_components
from repro.automata.elements import (
    CircuitAutomaton,
    Counter,
    CounterMode,
    Gate,
    GateKind,
    lower_circuit,
)
from repro.automata.dfa import Dfa, determinize
from repro.automata.epsilon import remove_epsilon
from repro.automata.nfa import Nfa
from repro.automata.optimize import (
    merge_common_prefixes,
    merge_common_suffixes,
    prune_dead,
    prune_unreachable,
    space_optimize,
)
from repro.automata.symbols import ANY, NONE, SymbolSet
from repro.automata.transform import homogeneous_to_nfa, to_homogeneous

__all__ = [
    "ANY",
    "NONE",
    "CircuitAutomaton",
    "ComponentStats",
    "Counter",
    "CounterMode",
    "Gate",
    "GateKind",
    "circuit_from_anml",
    "circuit_to_anml",
    "lower_circuit",
    "Dfa",
    "HomogeneousAutomaton",
    "Nfa",
    "StartKind",
    "Ste",
    "SymbolSet",
    "component_stats",
    "connected_components",
    "determinize",
    "from_anml",
    "homogeneous_to_nfa",
    "merge",
    "merge_common_prefixes",
    "merge_common_suffixes",
    "prune_dead",
    "prune_unreachable",
    "remove_epsilon",
    "space_optimize",
    "to_anml",
    "to_homogeneous",
]
