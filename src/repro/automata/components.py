"""Connected-component analysis of homogeneous automata.

Real-world NFAs are unions of many *connected components* (CCs), each
matching one pattern or a family of patterns (Section 3.1 of the paper).
CCs have no transitions between them, so the Cache Automaton compiler
treats each CC as an atomic mapping unit; this module finds them and
computes the Table 1 characteristics (#CCs, largest CC size).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.automata.anml import HomogeneousAutomaton

try:  # C-speed weak-CC labelling when scipy is present
    from scipy.sparse import coo_matrix
    from scipy.sparse.csgraph import connected_components as _csgraph_components
except ImportError:  # pragma: no cover - exercised only without scipy
    coo_matrix = None
    _csgraph_components = None


def _component_labels(node_count: int, arrays) -> np.ndarray:
    """Per-node component label (ints); scipy when available, else
    union-find with path halving over the edge arrays."""
    if _csgraph_components is not None:
        matrix = coo_matrix(
            (
                np.ones(arrays.sources.shape[0], dtype=np.int8),
                (arrays.sources, arrays.targets),
            ),
            shape=(node_count, node_count),
        )
        _, labels = _csgraph_components(
            matrix, directed=True, connection="weak"
        )
        return labels
    parent = list(range(node_count))

    def find(node: int) -> int:
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    for source, target in zip(
        arrays.sources.tolist(), arrays.targets.tolist()
    ):
        source_root = find(source)
        target_root = find(target)
        if target_root != source_root:
            parent[max(source_root, target_root)] = min(
                source_root, target_root
            )
    return np.fromiter(
        (find(node) for node in range(node_count)),
        dtype=np.int64,
        count=node_count,
    )


def connected_components(automaton: HomogeneousAutomaton) -> List[List[str]]:
    """Weakly connected components, each a sorted list of STE ids.

    Components are returned sorted by size ascending (the compiler packs
    smallest-first) with ties broken by the smallest member id so the
    result is deterministic.

    Works on the automaton's cached integer edge arrays, so the labelling
    itself is one sparse-graph call (or one union-find sweep) instead of a
    per-node BFS with set unions.
    """
    arrays = automaton.edge_index_arrays()
    ids = arrays.ids  # lexically sorted, so groups come out sorted too
    labels = _component_labels(len(ids), arrays)
    groups: Dict[int, List[str]] = {}
    for ste_id, label in zip(ids, labels.tolist()):
        groups.setdefault(label, []).append(ste_id)
    components = list(groups.values())
    components.sort(key=lambda cc: (len(cc), cc[0]))
    return components


@dataclass(frozen=True)
class ComponentStats:
    """The structural characteristics reported in Table 1."""

    state_count: int
    component_count: int
    largest_component_size: int
    edge_count: int
    average_fan_out: float

    def __str__(self) -> str:
        return (
            f"{self.state_count} states, {self.component_count} CCs,"
            f" largest {self.largest_component_size},"
            f" fan-out {self.average_fan_out:.2f}"
        )


def component_stats(automaton: HomogeneousAutomaton) -> ComponentStats:
    """Compute Table 1-style structure statistics for ``automaton``."""
    components = connected_components(automaton)
    largest = max((len(cc) for cc in components), default=0)
    return ComponentStats(
        state_count=len(automaton),
        component_count=len(components),
        largest_component_size=largest,
        edge_count=automaton.edge_count(),
        average_fan_out=automaton.average_fan_out(),
    )


def component_index(automaton: HomogeneousAutomaton) -> Dict[str, int]:
    """Map each STE id to the index of its component in component order."""
    index: Dict[str, int] = {}
    for component_number, members in enumerate(connected_components(automaton)):
        for ste_id in members:
            index[ste_id] = component_number
    return index


def extract_component(
    automaton: HomogeneousAutomaton,
    members: List[str],
    *,
    automaton_id: str = None,
) -> HomogeneousAutomaton:
    """The sub-automaton induced by ``members`` (assumed edge-closed).

    ``members`` may span several components — any edge-closed union
    works (the hybrid backend extracts one sub-automaton per substrate
    group this way).  ``automaton_id`` names the extract (default
    ``<id>.cc``).
    """
    member_set = set(members)
    extracted = HomogeneousAutomaton(
        automaton_id or f"{automaton.automaton_id}.cc"
    )
    for ste_id in members:
        ste = automaton.ste(ste_id)
        extracted.add_ste(
            ste.ste_id,
            ste.symbols,
            start=ste.start,
            reporting=ste.reporting,
            report_code=ste.report_code,
        )
    for ste_id in members:
        for target in automaton.successors(ste_id):
            if target in member_set:
                extracted.add_edge(ste_id, target)
    return extracted
