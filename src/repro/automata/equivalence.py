"""Language-equivalence checking between automata.

Two homogeneous automata are *report-equivalent* when, on every input,
they report at exactly the same offsets.  This is decidable: embed each
into a classical NFA whose accepted language is "inputs whose last symbol
triggers a report" (scanning semantics), determinise both, and compare
the DFAs by product reachability.

This is the formal tool behind the test suite's optimisation and
transform checks; it is exposed as a public API because downstream users
rewriting automata want the same guarantee.
"""

from __future__ import annotations

from typing import Optional

from repro.automata.anml import HomogeneousAutomaton
from repro.automata.dfa import determinize
from repro.automata.transform import homogeneous_to_nfa


def report_equivalent(
    first: HomogeneousAutomaton,
    second: HomogeneousAutomaton,
    *,
    max_states: int = 100_000,
) -> bool:
    """True iff the two automata report at identical offsets on all inputs.

    Exact (not sampled): compares the scanning DFAs of both machines.
    ``max_states`` bounds each subset construction; automata that blow
    past it raise :class:`~repro.errors.AutomatonError` — fall back to
    randomised testing for those.
    """
    first_dfa = determinize(homogeneous_to_nfa(first), max_states=max_states)
    second_dfa = determinize(homogeneous_to_nfa(second), max_states=max_states)
    return first_dfa.is_equivalent(second_dfa)


def distinguishing_input(
    first: HomogeneousAutomaton,
    second: HomogeneousAutomaton,
    *,
    max_states: int = 100_000,
) -> Optional[bytes]:
    """A shortest input on which the two automata's reports differ.

    Returns None when the automata are report-equivalent.  BFS over the
    product DFA, so the witness is minimal in length.
    """
    first_dfa = determinize(homogeneous_to_nfa(first), max_states=max_states)
    second_dfa = determinize(homogeneous_to_nfa(second), max_states=max_states)
    start = (first_dfa.start, second_dfa.start)
    frontier = [(start, b"")]
    seen = {start}
    while frontier:
        next_frontier = []
        for (state_a, state_b), prefix in frontier:
            if bool(first_dfa.accepting[state_a]) != bool(
                second_dfa.accepting[state_b]
            ):
                return prefix
            for symbol in range(256):
                successor = (
                    int(first_dfa.table[state_a, symbol]),
                    int(second_dfa.table[state_b, symbol]),
                )
                if successor not in seen:
                    seen.add(successor)
                    next_frontier.append((successor, prefix + bytes([symbol])))
        frontier = next_frontier
    return None
