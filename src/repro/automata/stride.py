"""k-stride alphabet transformation (CAMA-style symbol-set compression).

A k-stride automaton consumes *k* input bytes per transition.  Done
naively the transition alphabet explodes to ``256**k`` columns; CAMA's
observation is that an automaton only distinguishes bytes up to the
equivalence classes of its symbol-set labels, so the strided alphabet
can be the *k-fold product of byte classes* instead.  A ruleset with
``C`` distinct byte classes needs ``C**k`` stride classes — typically
a few hundred for k=2 on real rulesets, not 65536.

This module derives that compressed alphabet:

- :func:`resolve_stride` — stride selection mirroring
  :func:`repro.sim.shard.resolve_scan_jobs` (explicit value, else the
  ``REPRO_STRIDE`` environment variable, else 1), validating against
  the supported values {1, 2, 4}.
- :class:`StrideAlphabet` — the byte-class map plus the fold that
  turns a window of k bytes into one dense stride-class id, and its
  inverse (:meth:`~StrideAlphabet.representative_bytes`) used by the
  lazy DFA to materialise a missing strided transition by stepping the
  unstrided kernel over any representative window of the class.

The partition comes from either the compiled kernel's match matrix
(two bytes are equivalent iff their match-matrix rows are identical)
or the automaton's STE symbol sets
(:func:`repro.automata.symbols.equivalence_classes`); both induce the
same canonical numbering, so alphabets derived on either side of the
compile boundary agree.

When ``C**k`` would exceed :data:`STRIDE_CLASS_LIMIT` the transform
degrades k -> k//2 (ultimately to 1) rather than build an intractable
table; callers surface the effective stride through ``cache_info()``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Union

import numpy as np

from repro.automata.symbols import ALPHABET_SIZE, equivalence_classes
from repro.errors import StrideError

STRIDE_ENV = "REPRO_STRIDE"

#: Strides the execution stack supports (1 = unstrided passthrough).
STRIDE_VALUES = (1, 2, 4)

#: Ceiling on ``n_byte_classes ** stride``; above it the transform
#: degrades to the next smaller stride instead of building the table.
STRIDE_CLASS_LIMIT = 16384


def resolve_stride(stride: Union[int, str, None] = None) -> int:
    """Stride for the lazy-DFA path.

    ``stride`` may be an int, a numeric string, or ``None``/"auto" —
    the latter consults ``REPRO_STRIDE`` and falls back to 1
    (unstrided).  Values outside {1, 2, 4} raise :class:`StrideError`,
    including bad ``REPRO_STRIDE`` settings, so a typo'd environment
    fails loudly instead of silently scanning unstrided.
    """
    source = "stride"
    if stride is None or stride == "auto":
        stride = os.environ.get(STRIDE_ENV) or 1
        source = STRIDE_ENV
    try:
        value = int(stride)
    except (TypeError, ValueError):
        raise StrideError(
            f"{source} must be an integer from {STRIDE_VALUES}, got {stride!r}"
        ) from None
    if value not in STRIDE_VALUES:
        raise StrideError(
            f"{source} must be one of {STRIDE_VALUES}, got {value}"
        )
    return value


@dataclass(frozen=True)
class StrideAlphabet:
    """Compressed k-stride alphabet over byte equivalence classes.

    ``byte_class`` maps each byte value to its dense class id;
    ``representatives[c]`` is the smallest byte in class ``c``.  A
    window of k bytes folds to the stride-class id
    ``class(b0)*C**(k-1) + ... + class(b_{k-1})`` (first byte most
    significant), giving ``C**k`` dense ids without materialising a
    65536-wide map.
    """

    stride: int
    byte_class: np.ndarray = field(repr=False)
    representatives: np.ndarray = field(repr=False)

    def __post_init__(self):
        if self.stride not in STRIDE_VALUES:
            raise StrideError(
                f"stride must be one of {STRIDE_VALUES}, got {self.stride}"
            )
        if self.byte_class.shape != (ALPHABET_SIZE,):
            raise StrideError(
                f"byte_class must have shape (256,), got {self.byte_class.shape}"
            )
        self.byte_class.setflags(write=False)
        self.representatives.setflags(write=False)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_byte_classes(
        cls,
        class_of: np.ndarray,
        representatives: np.ndarray,
        stride: int,
        *,
        limit: int = STRIDE_CLASS_LIMIT,
    ) -> "StrideAlphabet":
        """Build the alphabet, degrading stride while ``C**k`` > limit."""
        stride = resolve_stride(stride)
        n_classes = int(representatives.size)
        while stride > 1 and n_classes**stride > limit:
            stride //= 2
        return cls(
            stride=stride,
            byte_class=np.asarray(class_of, dtype=np.int32).copy(),
            representatives=np.asarray(representatives, dtype=np.uint8).copy(),
        )

    @classmethod
    def from_kernel(
        cls, kernel, stride: int, *, limit: int = STRIDE_CLASS_LIMIT
    ) -> "StrideAlphabet":
        """Derive classes from a packed kernel's match matrix.

        Two bytes are interchangeable exactly when their match-matrix
        rows are bit-identical — no activation row can then distinguish
        them, so every kernel micro-step (and hence every DFA
        transition) agrees on the whole class.
        """
        from repro.automata.symbols import partition_byte_columns

        class_of, representatives = partition_byte_columns(
            np.asarray(kernel.match_matrix)
        )
        return cls.from_byte_classes(
            class_of, representatives, stride, limit=limit
        )

    @classmethod
    def from_automaton(
        cls, automaton, stride: int, *, limit: int = STRIDE_CLASS_LIMIT
    ) -> "StrideAlphabet":
        """Derive classes from the STE symbol sets of an ANML automaton."""
        class_of, representatives = equivalence_classes(
            ste.symbols for ste in automaton.stes()
        )
        return cls.from_byte_classes(
            class_of, representatives, stride, limit=limit
        )

    @classmethod
    def from_tables(cls, tables: Dict[str, np.ndarray]) -> "StrideAlphabet":
        """Rebuild from a :meth:`tables` export (cache / shared memory)."""
        return cls(
            stride=int(np.asarray(tables["stride_k"]).reshape(())),
            byte_class=np.asarray(
                tables["stride_class_of"], dtype=np.int32
            ).copy(),
            representatives=np.asarray(
                tables["stride_reps"], dtype=np.uint8
            ).copy(),
        )

    # -- queries -----------------------------------------------------------

    @property
    def n_byte_classes(self) -> int:
        return int(self.representatives.size)

    @property
    def n_stride_classes(self) -> int:
        return self.n_byte_classes**self.stride

    def stride_classes(self, symbols: np.ndarray) -> np.ndarray:
        """Fold byte windows into stride-class ids, vectorised.

        ``symbols`` must be a uint8 array whose length is a multiple of
        the stride (callers peel the odd tail first); returns an int64
        array of ``len(symbols) // stride`` dense class ids.
        """
        k = self.stride
        if len(symbols) % k:
            raise StrideError(
                f"input length {len(symbols)} is not a multiple of stride {k}"
            )
        classes = self.byte_class[symbols]
        folded = classes[0::k].astype(np.int64)
        for phase in range(1, k):
            folded *= self.n_byte_classes
            folded += classes[phase::k]
        return folded

    def representative_bytes(self, stride_class: int) -> bytes:
        """Any k-byte window belonging to ``stride_class`` (the
        smallest-byte representative of each digit).  Every window in
        the class drives the kernel identically, so the lazy DFA may
        materialise a missing transition from this one."""
        base = self.n_byte_classes
        digits = []
        value = int(stride_class)
        for _ in range(self.stride):
            digits.append(value % base)
            value //= base
        if value:
            raise StrideError(
                f"stride class {stride_class} out of range "
                f"(alphabet has {self.n_stride_classes} classes)"
            )
        return bytes(int(self.representatives[d]) for d in reversed(digits))

    def tables(self) -> Dict[str, np.ndarray]:
        """Arrays for shared-memory publication / artifact payloads."""
        return {
            "stride_k": np.array(self.stride, dtype=np.int32),
            "stride_class_of": np.asarray(self.byte_class, dtype=np.int32),
            "stride_reps": np.asarray(self.representatives, dtype=np.uint8),
        }
