"""Deterministic finite automata: subset construction and minimisation.

The DFA substrate serves two roles in this reproduction:

* the **CPU baseline** — compute-centric engines process one DFA
  transition per input symbol via a dense lookup table (Section 6,
  "Compute-Centric Architectures");
* a **correctness oracle** — language equivalence of two NFAs is checked
  by comparing their minimised DFAs in tests.

The transition table is a dense ``(states, 256)`` numpy array, which is
also exactly the memory layout a table-driven CPU matcher would use.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

import numpy as np

from repro.automata.nfa import Nfa, StateId
from repro.errors import AutomatonError, DeterminisationExplosion

ALPHABET = 256

#: Index of the dead (sink) state in every table produced here.
DEAD = 0


class Dfa:
    """A complete DFA over the byte alphabet with a dense transition table.

    State 0 is always the dead state (all self-loops, non-accepting).
    """

    def __init__(self, table: np.ndarray, accepting: np.ndarray, start: int):
        if table.ndim != 2 or table.shape[1] != ALPHABET:
            raise AutomatonError(f"table must be (n, 256), got {table.shape}")
        if accepting.shape != (table.shape[0],):
            raise AutomatonError("accepting vector length mismatch")
        if not 0 <= start < table.shape[0]:
            raise AutomatonError(f"start state {start} out of range")
        if accepting[DEAD] or (table[DEAD] != DEAD).any():
            raise AutomatonError("state 0 must be a non-accepting sink")
        self.table = table.astype(np.int64)
        self.accepting = accepting.astype(bool)
        self.start = start

    @property
    def state_count(self) -> int:
        return self.table.shape[0]

    # -- semantics ---------------------------------------------------------

    def accepts(self, data: bytes) -> bool:
        """Whole-string acceptance."""
        state = self.start
        table = self.table
        for symbol in data:
            state = table[state, symbol]
            if state == DEAD:
                return False
        return bool(self.accepting[state])

    def find_matches(self, data: bytes) -> List[int]:
        """End offsets (1-based) where an accepting state is entered.

        Offset 0 is reported if the start state itself accepts.  For
        scanning semantics build the DFA with ``scanning=True``.
        """
        matches = []
        state = self.start
        if self.accepting[state]:
            matches.append(0)
        table = self.table
        accepting = self.accepting
        for offset, symbol in enumerate(data):
            state = table[state, symbol]
            if accepting[state]:
                matches.append(offset + 1)
        return matches

    def count_matches(self, data: bytes) -> int:
        return len(self.find_matches(data))

    # -- minimisation ------------------------------------------------------

    def minimize(self) -> "Dfa":
        """Minimise by Moore partition refinement (vectorised with numpy).

        States are iteratively re-classified by the signature
        ``(accepting, class of each successor)`` until a fixed point; the
        quotient automaton is returned with the dead state re-canonicalised
        to index 0.
        """
        classes = self.accepting.astype(np.int64)
        while True:
            signature = np.concatenate(
                [classes[:, None], classes[self.table]], axis=1
            )
            _, new_classes = np.unique(signature, axis=0, return_inverse=True)
            if np.array_equal(new_classes, classes) or len(
                np.unique(new_classes)
            ) == len(np.unique(classes)):
                classes = new_classes
                break
            classes = new_classes
        # Renumber so the dead state's class is 0.
        dead_class = classes[DEAD]
        order = [dead_class] + [c for c in range(classes.max() + 1) if c != dead_class]
        renumber = {old: new for new, old in enumerate(order)}
        remap = np.array([renumber[c] for c in range(classes.max() + 1)])
        classes = remap[classes]
        count = classes.max() + 1
        table = np.zeros((count, ALPHABET), dtype=np.int64)
        accepting = np.zeros(count, dtype=bool)
        representative_seen = np.zeros(count, dtype=bool)
        for state in range(self.state_count):
            cls = classes[state]
            if not representative_seen[cls]:
                representative_seen[cls] = True
                table[cls] = classes[self.table[state]]
                accepting[cls] = self.accepting[state]
        return Dfa(table, accepting, int(classes[self.start]))

    def is_equivalent(self, other: "Dfa") -> bool:
        """Language equality via product-construction reachability."""
        seen: Set[Tuple[int, int]] = {(self.start, other.start)}
        frontier = [(self.start, other.start)]
        while frontier:
            mine, theirs = frontier.pop()
            if bool(self.accepting[mine]) != bool(other.accepting[theirs]):
                return False
            successors = set(
                zip(self.table[mine].tolist(), other.table[theirs].tolist())
            )
            for pair in successors:
                if pair not in seen:
                    seen.add(pair)
                    frontier.append(pair)
        return True

    def __repr__(self) -> str:
        return f"Dfa(states={self.state_count}, start={self.start})"


def determinize(nfa: Nfa, *, scanning: bool = False, max_states: int = 200_000) -> Dfa:
    """Subset construction over the byte alphabet.

    With ``scanning=True`` the start closure is re-injected after every
    step, producing the DFA of the unanchored-search machine (this is how
    table-driven IDS engines compile their rule sets).

    ``max_states`` guards against the exponential blow-up inherent to
    determinisation.
    """
    nfa.validate()
    start_closure = frozenset(nfa.epsilon_closure(nfa.start_states))
    accept_states = nfa.accept_states

    # Pre-index each NFA state's outgoing edges as (mask, target) pairs.
    edges: Dict[StateId, List[Tuple[int, StateId]]] = {
        state: [(symbols.mask, target) for symbols, target in nfa.transitions_from(state)]
        for state in nfa.states
    }
    epsilon_cache: Dict[FrozenSet[StateId], FrozenSet[StateId]] = {}

    def closure(states: FrozenSet[StateId]) -> FrozenSet[StateId]:
        if states not in epsilon_cache:
            epsilon_cache[states] = frozenset(nfa.epsilon_closure(states))
        return epsilon_cache[states]

    dfa_ids: Dict[FrozenSet[StateId], int] = {frozenset(): DEAD}
    rows: List[List[int]] = [[DEAD] * ALPHABET]
    accepting: List[bool] = [False]

    def intern(states: FrozenSet[StateId]) -> int:
        if states not in dfa_ids:
            if len(dfa_ids) >= max_states:
                raise DeterminisationExplosion(
                    f"subset construction exceeded {max_states} states",
                    state_estimate=len(dfa_ids),
                    max_states=max_states,
                )
            dfa_ids[states] = len(rows)
            rows.append([DEAD] * ALPHABET)
            accepting.append(bool(states & accept_states))
        return dfa_ids[states]

    start_set = start_closure
    start_id = intern(start_set)
    worklist = [start_set]
    processed = {frozenset(), start_set}
    while worklist:
        current = worklist.pop()
        current_id = dfa_ids[current]
        # Group the 256 symbols by successor set using bitmask arithmetic:
        # each member edge contributes its mask; symbols with identical
        # "which edges fire" signatures share a successor set.
        member_edges = [pair for state in current for pair in edges.get(state, ())]
        if not member_edges and not scanning:
            continue
        successor_by_symbol: Dict[int, Set[StateId]] = {}
        for mask, target in member_edges:
            while mask:
                low_bit = mask & -mask
                symbol = low_bit.bit_length() - 1
                successor_by_symbol.setdefault(symbol, set()).add(target)
                mask ^= low_bit
        default_successor: FrozenSet[StateId] = (
            start_set if scanning else frozenset()
        )
        default_id = intern(default_successor)
        row = rows[current_id]
        for symbol in range(ALPHABET):
            row[symbol] = default_id
        if scanning and default_successor not in processed:
            processed.add(default_successor)
            worklist.append(default_successor)
        for symbol, targets in successor_by_symbol.items():
            successor = closure(frozenset(targets))
            if scanning:
                successor = frozenset(successor | start_set)
            row[symbol] = intern(successor)
            if successor not in processed:
                processed.add(successor)
                worklist.append(successor)

    table = np.array(rows, dtype=np.int64)
    return Dfa(table, np.array(accepting, dtype=bool), start_id)
