"""Homogeneous (ANML-style) automata — the Cache Automaton's native model.

In an ANML automaton every state has valid incoming transitions for only
one symbol set, so the state itself can carry the label: a state (called an
STE, *state transition element*) is active after step *t* iff some
predecessor was active at step *t-1* **and** the step-*t* input symbol is
in the state's label.  This is what lets the hardware evaluate state-match
as one SRAM row read and state-transition as a crossbar traversal.

This module provides the :class:`HomogeneousAutomaton` graph model plus
ANML-XML serialisation compatible with the format used by Micron's AP SDK
and the ANMLZoo benchmarks (the subset this library needs).
"""

from __future__ import annotations

import xml.etree.ElementTree as ElementTree
from dataclasses import dataclass, replace
from enum import Enum
from typing import Dict, Iterable, Iterator, List, Optional, Set

import numpy as np

from repro.automata.charclass import parse_symbol_set
from repro.automata.symbols import SymbolSet
from repro.errors import AnmlError, AutomatonError


@dataclass(frozen=True)
class EdgeIndexArrays:
    """Integer-indexed view of an automaton's transition graph.

    ``ids`` is the lexically sorted state list; ``index`` maps each id to
    its position; ``sources``/``targets`` hold one entry per edge as
    positions into ``ids``.  Edge order is whatever the successor sets
    yield — canonicalise with :meth:`argsort_edges` when order matters.
    """

    ids: List[str]
    index: Dict[str, int]
    sources: np.ndarray
    targets: np.ndarray

    def argsort_edges(self) -> np.ndarray:
        """Permutation putting edges in (source, target) order."""
        return np.lexsort((self.targets, self.sources))


class StartKind(Enum):
    """When a state self-activates, independent of predecessors."""

    #: Never self-activates; only predecessor activation can enable it.
    NONE = "none"
    #: Active for the very first input symbol only (anchored match).
    START_OF_DATA = "start-of-data"
    #: Active for every input symbol (unanchored search).
    ALL_INPUT = "all-input"


@dataclass(frozen=True)
class Ste:
    """One state transition element: a labelled, flagged automaton state."""

    ste_id: str
    symbols: SymbolSet
    start: StartKind = StartKind.NONE
    reporting: bool = False
    report_code: Optional[str] = None

    def matches(self, symbol: int) -> bool:
        return self.symbols.matches(symbol)


class HomogeneousAutomaton:
    """A homogeneous NFA: labelled states + an unlabelled transition graph."""

    def __init__(self, automaton_id: str = "anml"):
        self.automaton_id = automaton_id
        self._stes: Dict[str, Ste] = {}
        self._successors: Dict[str, Set[str]] = {}
        self._predecessors: Dict[str, Set[str]] = {}
        #: Bumped on every structural mutation; lets derived values (e.g.
        #: the compile cache's content fingerprint) be memoised safely.
        self._mutation_version = 0
        self._edge_arrays: Optional[EdgeIndexArrays] = None
        self._edge_arrays_version = -1
        self._validated_version = -1

    # -- construction ------------------------------------------------------

    def add_ste(
        self,
        ste_id: str,
        symbols: SymbolSet,
        *,
        start: StartKind = StartKind.NONE,
        reporting: bool = False,
        report_code: Optional[str] = None,
    ) -> Ste:
        """Add a new STE; raises if the id already exists."""
        if ste_id in self._stes:
            raise AutomatonError(f"duplicate STE id {ste_id!r}")
        if symbols.is_empty():
            raise AutomatonError(f"STE {ste_id!r} would match no symbol")
        ste = Ste(ste_id, symbols, start, reporting, report_code)
        self._stes[ste_id] = ste
        self._successors[ste_id] = set()
        self._predecessors[ste_id] = set()
        self._mutation_version += 1
        return ste

    def add_edge(self, source: str, target: str):
        """Connect ``source`` to ``target`` (activate-on-match)."""
        if source not in self._stes:
            raise AutomatonError(f"unknown source STE {source!r}")
        if target not in self._stes:
            raise AutomatonError(f"unknown target STE {target!r}")
        self._successors[source].add(target)
        self._predecessors[target].add(source)
        self._mutation_version += 1

    def remove_ste(self, ste_id: str):
        """Delete an STE and all edges touching it."""
        if ste_id not in self._stes:
            raise AutomatonError(f"unknown STE {ste_id!r}")
        for target in self._successors.pop(ste_id):
            self._predecessors[target].discard(ste_id)
        for source in self._predecessors.pop(ste_id):
            self._successors[source].discard(ste_id)
        del self._stes[ste_id]
        self._mutation_version += 1

    def replace_ste(self, ste: Ste):
        """Swap in a modified copy of an existing STE (edges kept)."""
        if ste.ste_id not in self._stes:
            raise AutomatonError(f"unknown STE {ste.ste_id!r}")
        if ste.symbols.is_empty():
            raise AutomatonError(f"STE {ste.ste_id!r} would match no symbol")
        self._stes[ste.ste_id] = ste
        self._mutation_version += 1

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._stes)

    def __contains__(self, ste_id: str) -> bool:
        return ste_id in self._stes

    def ste(self, ste_id: str) -> Ste:
        try:
            return self._stes[ste_id]
        except KeyError:
            raise AutomatonError(f"unknown STE {ste_id!r}") from None

    def stes(self) -> Iterator[Ste]:
        return iter(self._stes.values())

    def ste_ids(self) -> List[str]:
        return list(self._stes)

    def successors(self, ste_id: str) -> Set[str]:
        return set(self._successors[ste_id])

    def predecessors(self, ste_id: str) -> Set[str]:
        return set(self._predecessors[ste_id])

    def edges(self) -> Iterator[tuple[str, str]]:
        for source, targets in self._successors.items():
            for target in sorted(targets):
                yield (source, target)

    def edges_unordered(self) -> Iterator[tuple[str, str]]:
        """Edge iterator without the per-node target sort.

        Hot paths (constraint analysis, component finding, simulator table
        construction) only aggregate over edges, so they skip
        :meth:`edges`'s deterministic-order guarantee and its sort cost.
        """
        for source, targets in self._successors.items():
            for target in targets:
                yield (source, target)

    @property
    def mutation_version(self) -> int:
        """Monotonic counter of structural mutations (for memoisation)."""
        return self._mutation_version

    def edge_index_arrays(self) -> EdgeIndexArrays:
        """Cached integer edge view (rebuilt only after mutations).

        Component finding, constraint analysis, and cache fingerprinting
        all reduce over every edge; sharing one integer-array view turns
        each of those from a per-edge Python loop into array work.
        """
        if (
            self._edge_arrays is not None
            and self._edge_arrays_version == self._mutation_version
        ):
            return self._edge_arrays
        ids = sorted(self._stes)
        index = {ste_id: position for position, ste_id in enumerate(ids)}
        sources: List[int] = []
        targets: List[int] = []
        for ste_id, successor_set in self._successors.items():
            if successor_set:
                sources.extend([index[ste_id]] * len(successor_set))
                targets.extend(map(index.__getitem__, successor_set))
        self._edge_arrays = EdgeIndexArrays(
            ids,
            index,
            np.asarray(sources, dtype=np.int32),
            np.asarray(targets, dtype=np.int32),
        )
        self._edge_arrays_version = self._mutation_version
        return self._edge_arrays

    def edge_count(self) -> int:
        return sum(len(targets) for targets in self._successors.values())

    def start_states(self) -> List[Ste]:
        return [s for s in self._stes.values() if s.start is not StartKind.NONE]

    def reporting_states(self) -> List[Ste]:
        return [s for s in self._stes.values() if s.reporting]

    def out_degree(self, ste_id: str) -> int:
        return len(self._successors[ste_id])

    def in_degree(self, ste_id: str) -> int:
        return len(self._predecessors[ste_id])

    def average_fan_out(self) -> float:
        if not self._stes:
            return 0.0
        return self.edge_count() / len(self._stes)

    def validate(self):
        """Check invariants: starts exist, no dangling edges, labels non-empty.

        The per-edge checks are memoised on the mutation counter, so
        validating an unchanged automaton twice costs only the start-state
        scan.  The dangling check uses C-level set containment per node
        instead of a Python loop per edge.
        """
        if not self._stes:
            raise AutomatonError("automaton has no states")
        if not self.start_states():
            raise AutomatonError("automaton has no start states")
        if self._validated_version == self._mutation_version:
            return
        known = self._stes.keys()
        predecessors = self._predecessors
        for source, targets in self._successors.items():
            if not targets:
                continue
            if not targets <= known:
                target = min(targets - known)
                raise AutomatonError(f"edge {source!r}->{target!r} dangles")
            if not all(source in predecessors[target] for target in targets):
                target = next(
                    t for t in targets if source not in predecessors[t]
                )
                raise AutomatonError(
                    f"predecessor index out of sync for {source!r}->{target!r}"
                )
        self._validated_version = self._mutation_version

    # -- transformations ---------------------------------------------------

    def copy(self, automaton_id: Optional[str] = None) -> "HomogeneousAutomaton":
        duplicate = HomogeneousAutomaton(automaton_id or self.automaton_id)
        duplicate._stes = dict(self._stes)
        duplicate._successors = {k: set(v) for k, v in self._successors.items()}
        duplicate._predecessors = {k: set(v) for k, v in self._predecessors.items()}
        return duplicate

    def relabelled(self, prefix: str) -> "HomogeneousAutomaton":
        """A copy with states renamed ``{prefix}0..{prefix}N`` (stable order)."""
        names = {old: f"{prefix}{index}" for index, old in enumerate(self._stes)}
        renamed = HomogeneousAutomaton(self.automaton_id)
        for old_id, ste in self._stes.items():
            renamed.add_ste(
                names[old_id],
                ste.symbols,
                start=ste.start,
                reporting=ste.reporting,
                report_code=ste.report_code,
            )
        for source, target in self.edges():
            renamed.add_edge(names[source], names[target])
        return renamed

    def __repr__(self) -> str:
        return (
            f"HomogeneousAutomaton({self.automaton_id!r}, states={len(self)},"
            f" edges={self.edge_count()}, starts={len(self.start_states())},"
            f" reports={len(self.reporting_states())})"
        )


def merge(
    automata: Iterable[HomogeneousAutomaton], automaton_id: str = "merged"
) -> HomogeneousAutomaton:
    """Disjoint union of homogeneous automata (multi-pattern machine)."""
    combined = HomogeneousAutomaton(automaton_id)
    for index, automaton in enumerate(automata):
        part = automaton.relabelled(f"m{index}_")
        for ste in part.stes():
            combined.add_ste(
                ste.ste_id,
                ste.symbols,
                start=ste.start,
                reporting=ste.reporting,
                report_code=ste.report_code,
            )
        for source, target in part.edges():
            combined.add_edge(source, target)
    return combined


# -- ANML XML serialisation -------------------------------------------------

_START_ATTRIBUTE = {
    StartKind.NONE: None,
    StartKind.START_OF_DATA: "start-of-data",
    StartKind.ALL_INPUT: "all-input",
}
_START_FROM_ATTRIBUTE = {v: k for k, v in _START_ATTRIBUTE.items() if v}


def to_anml(automaton: HomogeneousAutomaton) -> str:
    """Serialise to an ANML XML document string."""
    root = ElementTree.Element("anml-network", {"id": automaton.automaton_id})
    for ste in automaton.stes():
        attributes = {
            "id": ste.ste_id,
            "symbol-set": ste.symbols.canonical_expression(),
        }
        start_value = _START_ATTRIBUTE[ste.start]
        if start_value:
            attributes["start"] = start_value
        element = ElementTree.SubElement(
            root, "state-transition-element", attributes
        )
        for target in sorted(automaton.successors(ste.ste_id)):
            ElementTree.SubElement(element, "activate-on-match", {"element": target})
        if ste.reporting:
            report_attributes = {}
            if ste.report_code is not None:
                report_attributes["reportcode"] = ste.report_code
            ElementTree.SubElement(element, "report-on-match", report_attributes)
    ElementTree.indent(root)
    return ElementTree.tostring(root, encoding="unicode")


def from_anml(document: str) -> HomogeneousAutomaton:
    """Parse an ANML XML document produced by :func:`to_anml` (or the AP SDK)."""
    try:
        root = ElementTree.fromstring(document)
    except ElementTree.ParseError as error:
        raise AnmlError(f"not well-formed XML: {error}") from error
    if root.tag == "anml":
        networks = root.findall("automata-network") + root.findall("anml-network")
        if len(networks) != 1:
            raise AnmlError(f"expected exactly one network, found {len(networks)}")
        root = networks[0]
    elif root.tag not in ("anml-network", "automata-network"):
        raise AnmlError(f"unexpected root element <{root.tag}>")
    automaton = HomogeneousAutomaton(root.get("id", "anml"))
    pending_edges: List[tuple[str, str]] = []
    for element in root:
        if element.tag != "state-transition-element":
            raise AnmlError(f"unsupported ANML element <{element.tag}>")
        ste_id = element.get("id")
        if not ste_id:
            raise AnmlError("state-transition-element without id")
        expression = element.get("symbol-set")
        if expression is None:
            raise AnmlError(f"STE {ste_id!r} has no symbol-set")
        start_attribute = element.get("start")
        if start_attribute in (None, "none"):
            start = StartKind.NONE
        elif start_attribute in _START_FROM_ATTRIBUTE:
            start = _START_FROM_ATTRIBUTE[start_attribute]
        else:
            raise AnmlError(f"unknown start kind {start_attribute!r}")
        reporting = False
        report_code = None
        for child in element:
            if child.tag == "activate-on-match":
                target = child.get("element")
                if not target:
                    raise AnmlError(f"activate-on-match without element in {ste_id!r}")
                pending_edges.append((ste_id, target))
            elif child.tag == "report-on-match":
                reporting = True
                report_code = child.get("reportcode")
            else:
                raise AnmlError(f"unsupported child <{child.tag}> in {ste_id!r}")
        automaton.add_ste(
            ste_id,
            parse_symbol_set(expression),
            start=start,
            reporting=reporting,
            report_code=report_code,
        )
    for source, target in pending_edges:
        automaton.add_edge(source, target)
    return automaton


def with_report_codes(
    automaton: HomogeneousAutomaton, code: str
) -> HomogeneousAutomaton:
    """A copy where every reporting STE carries ``code`` as its report code."""
    updated = automaton.copy()
    for ste in list(updated.stes()):
        if ste.reporting and ste.report_code is None:
            updated.replace_ste(replace(ste, report_code=code))
    return updated
