"""ANML XML serialisation for full circuits (STEs + gates + counters).

Extends the pure-STE format of :mod:`repro.automata.anml` with the AP
SDK's ``<or>``, ``<and>``, ``<inverter>`` and ``<counter>`` elements, so
ANMLZoo inputs that use them can be parsed, simulated with
:mod:`repro.sim.circuit`, and (when only OR gates are involved) lowered
onto the Cache Automaton.
"""

from __future__ import annotations

import xml.etree.ElementTree as ElementTree
from typing import List, Tuple

from repro.automata.anml import StartKind
from repro.automata.charclass import parse_symbol_set
from repro.automata.elements import (
    PORT_ACTIVATE,
    PORT_COUNT,
    CircuitAutomaton,
    CounterMode,
    GateKind,
)
from repro.errors import AnmlError

_GATE_TAGS = {kind.value: kind for kind in GateKind}
_COUNTER_MODES = {mode.value: mode for mode in CounterMode}
_START_ATTRIBUTES = {
    StartKind.START_OF_DATA: "start-of-data",
    StartKind.ALL_INPUT: "all-input",
}


def circuit_to_anml(circuit: CircuitAutomaton) -> str:
    """Serialise a circuit to ANML XML."""
    root = ElementTree.Element("anml-network", {"id": circuit.circuit_id})
    targets_of = {}
    for source, target, port in circuit.edges():
        targets_of.setdefault(source, []).append((target, port))

    def emit_outputs(element, source_id: str):
        for target, port in sorted(targets_of.get(source_id, ())):
            attributes = {"element": target}
            if port != PORT_ACTIVATE:
                attributes["element"] = f"{target}:{port}"
            ElementTree.SubElement(element, "activate-on-match", attributes)

    def emit_report(element, reporting: bool, report_code):
        if reporting:
            attributes = {}
            if report_code is not None:
                attributes["reportcode"] = report_code
            ElementTree.SubElement(element, "report-on-match", attributes)

    for ste in circuit.stes():
        attributes = {
            "id": ste.ste_id,
            "symbol-set": ste.symbols.canonical_expression(),
        }
        if ste.start in _START_ATTRIBUTES:
            attributes["start"] = _START_ATTRIBUTES[ste.start]
        element = ElementTree.SubElement(
            root, "state-transition-element", attributes
        )
        emit_outputs(element, ste.ste_id)
        emit_report(element, ste.reporting, ste.report_code)

    for gate in circuit.gates():
        element = ElementTree.SubElement(
            root, gate.kind.value, {"id": gate.gate_id}
        )
        emit_outputs(element, gate.gate_id)
        emit_report(element, gate.reporting, gate.report_code)

    for counter in circuit.counters():
        element = ElementTree.SubElement(
            root,
            "counter",
            {
                "id": counter.counter_id,
                "target": str(counter.target),
                "at-target": counter.mode.value,
            },
        )
        emit_outputs(element, counter.counter_id)
        emit_report(element, counter.reporting, counter.report_code)

    ElementTree.indent(root)
    return ElementTree.tostring(root, encoding="unicode")


def circuit_from_anml(document: str) -> CircuitAutomaton:
    """Parse an ANML XML document that may contain gates and counters."""
    try:
        root = ElementTree.fromstring(document)
    except ElementTree.ParseError as error:
        raise AnmlError(f"not well-formed XML: {error}") from error
    if root.tag == "anml":
        networks = root.findall("anml-network") + root.findall("automata-network")
        if len(networks) != 1:
            raise AnmlError(f"expected exactly one network, found {len(networks)}")
        root = networks[0]
    elif root.tag not in ("anml-network", "automata-network"):
        raise AnmlError(f"unexpected root element <{root.tag}>")

    circuit = CircuitAutomaton(root.get("id", "circuit"))
    pending: List[Tuple[str, str, str]] = []

    def collect_children(element, element_id: str) -> Tuple[bool, str | None]:
        reporting = False
        report_code = None
        for child in element:
            if child.tag == "activate-on-match":
                raw_target = child.get("element")
                if not raw_target:
                    raise AnmlError(
                        f"activate-on-match without element in {element_id!r}"
                    )
                target, _, port = raw_target.partition(":")
                pending.append((element_id, target, port or PORT_ACTIVATE))
            elif child.tag == "report-on-match":
                reporting = True
                report_code = child.get("reportcode")
            else:
                raise AnmlError(
                    f"unsupported child <{child.tag}> in {element_id!r}"
                )
        return reporting, report_code

    for element in root:
        element_id = element.get("id")
        if not element_id:
            raise AnmlError(f"<{element.tag}> without id")
        if element.tag == "state-transition-element":
            expression = element.get("symbol-set")
            if expression is None:
                raise AnmlError(f"STE {element_id!r} has no symbol-set")
            start_attribute = element.get("start")
            if start_attribute in (None, "none"):
                start = StartKind.NONE
            elif start_attribute == "start-of-data":
                start = StartKind.START_OF_DATA
            elif start_attribute == "all-input":
                start = StartKind.ALL_INPUT
            else:
                raise AnmlError(f"unknown start kind {start_attribute!r}")
            reporting, report_code = collect_children(element, element_id)
            circuit.add_ste(
                element_id,
                parse_symbol_set(expression),
                start=start,
                reporting=reporting,
                report_code=report_code,
            )
        elif element.tag in _GATE_TAGS:
            reporting, report_code = collect_children(element, element_id)
            circuit.add_gate(
                element_id,
                _GATE_TAGS[element.tag],
                reporting=reporting,
                report_code=report_code,
            )
        elif element.tag == "counter":
            target_attribute = element.get("target")
            if target_attribute is None:
                raise AnmlError(f"counter {element_id!r} has no target")
            try:
                target = int(target_attribute)
            except ValueError:
                raise AnmlError(
                    f"counter {element_id!r} target {target_attribute!r} "
                    "is not an integer"
                ) from None
            mode_attribute = element.get("at-target", "latch")
            if mode_attribute not in _COUNTER_MODES:
                raise AnmlError(
                    f"counter {element_id!r}: unknown at-target "
                    f"{mode_attribute!r}"
                )
            reporting, report_code = collect_children(element, element_id)
            circuit.add_counter(
                element_id,
                target,
                mode=_COUNTER_MODES[mode_attribute],
                reporting=reporting,
                report_code=report_code,
            )
        else:
            raise AnmlError(f"unsupported ANML element <{element.tag}>")

    for source, target, port in pending:
        # Counter ports may also be expressed by the AP convention
        # "id:count"/"id:reset"; bare references to counters mean "count".
        if port == PORT_ACTIVATE and target in {
            c.counter_id for c in circuit.counters()
        }:
            port = PORT_COUNT
        circuit.connect(source, target, port=port)
    return circuit
