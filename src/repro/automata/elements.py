"""ANML circuit elements: boolean gates and counters (AP compatibility).

Micron's ANML is richer than pure homogeneous NFAs: besides STEs it has
combinational **boolean gates** (and/or/inverter) and **counters** with
latch / pulse / roll-over semantics.  The Cache Automaton paper maps only
STEs — which is why the compiler rejects circuits containing counters or
AND/NOT gates — but real ANMLZoo inputs use these elements, so the
library models them for front-end compatibility:

* :class:`CircuitAutomaton` — STEs + gates + counters with ported edges;
* :mod:`repro.sim.circuit` — a reference simulator for full circuits;
* :func:`lower_circuit` — rewrites what *can* run on Cache Automaton
  (OR gates are pure wiring; reporting ORs fold into their inputs) into a
  plain :class:`~repro.automata.anml.HomogeneousAutomaton`, and raises
  :class:`~repro.errors.CompileError` for counters/AND/NOT, the honest
  boundary of the paper's architecture.

Element semantics (per the AP SDK, as implemented by VASim):

* STEs match and activate exactly as in the homogeneous model;
* gates evaluate *combinationally within a cycle* on the activation
  signals of STEs, counters, and other gates (the gate network must be
  acyclic);
* a signal wired to an STE enables it for the *next* symbol;
* counters count activation events on their ``count`` port and are
  cleared by their ``reset`` port (reset wins over count): **latch**
  output stays high from target until reset; **pulse** fires for one
  cycle at target and holds until reset; **roll-over** fires for one
  cycle and restarts from zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.automata.anml import HomogeneousAutomaton, StartKind, Ste
from repro.automata.symbols import SymbolSet
from repro.errors import AutomatonError, CompileError


class GateKind(Enum):
    AND = "and"
    OR = "or"
    NOT = "inverter"


class CounterMode(Enum):
    LATCH = "latch"
    PULSE = "pulse"
    ROLLOVER = "roll-over"


@dataclass(frozen=True)
class Gate:
    """A combinational boolean element."""

    gate_id: str
    kind: GateKind
    reporting: bool = False
    report_code: Optional[str] = None


@dataclass(frozen=True)
class Counter:
    """A saturating/rolling event counter with a target threshold."""

    counter_id: str
    target: int
    mode: CounterMode = CounterMode.LATCH
    reporting: bool = False
    report_code: Optional[str] = None

    def __post_init__(self):
        if self.target < 1:
            raise AutomatonError(
                f"counter {self.counter_id!r} target must be >= 1"
            )


#: Counter input ports.
PORT_ACTIVATE = "activate"
PORT_COUNT = "count"
PORT_RESET = "reset"


class CircuitAutomaton:
    """An ANML circuit: STEs, gates, and counters wired together."""

    def __init__(self, circuit_id: str = "circuit"):
        self.circuit_id = circuit_id
        self._stes: Dict[str, Ste] = {}
        self._gates: Dict[str, Gate] = {}
        self._counters: Dict[str, Counter] = {}
        #: (source, target, port) triples.
        self._edges: Set[Tuple[str, str, str]] = set()

    # -- construction ------------------------------------------------------

    def add_ste(
        self,
        ste_id: str,
        symbols: SymbolSet,
        *,
        start: StartKind = StartKind.NONE,
        reporting: bool = False,
        report_code: Optional[str] = None,
    ) -> Ste:
        self._check_fresh(ste_id)
        if symbols.is_empty():
            raise AutomatonError(f"STE {ste_id!r} would match no symbol")
        ste = Ste(ste_id, symbols, start, reporting, report_code)
        self._stes[ste_id] = ste
        return ste

    def add_gate(
        self,
        gate_id: str,
        kind: GateKind,
        *,
        reporting: bool = False,
        report_code: Optional[str] = None,
    ) -> Gate:
        self._check_fresh(gate_id)
        gate = Gate(gate_id, kind, reporting, report_code)
        self._gates[gate_id] = gate
        return gate

    def add_counter(
        self,
        counter_id: str,
        target: int,
        *,
        mode: CounterMode = CounterMode.LATCH,
        reporting: bool = False,
        report_code: Optional[str] = None,
    ) -> Counter:
        self._check_fresh(counter_id)
        counter = Counter(counter_id, target, mode, reporting, report_code)
        self._counters[counter_id] = counter
        return counter

    def connect(self, source: str, target: str, *, port: str = PORT_ACTIVATE):
        """Wire ``source``'s output to ``target`` (on ``port`` for counters)."""
        if source not in self:
            raise AutomatonError(f"unknown source element {source!r}")
        if target not in self:
            raise AutomatonError(f"unknown target element {target!r}")
        if target in self._counters:
            if port not in (PORT_COUNT, PORT_RESET):
                raise AutomatonError(
                    f"counter {target!r} accepts ports "
                    f"'{PORT_COUNT}'/'{PORT_RESET}', not {port!r}"
                )
        elif port != PORT_ACTIVATE:
            raise AutomatonError(
                f"{target!r} is not a counter; only the "
                f"'{PORT_ACTIVATE}' port exists"
            )
        self._edges.add((source, target, port))

    def _check_fresh(self, element_id: str):
        if element_id in self:
            raise AutomatonError(f"duplicate element id {element_id!r}")

    # -- queries -----------------------------------------------------------

    def __contains__(self, element_id: str) -> bool:
        return (
            element_id in self._stes
            or element_id in self._gates
            or element_id in self._counters
        )

    def __len__(self) -> int:
        return len(self._stes) + len(self._gates) + len(self._counters)

    def stes(self) -> Iterator[Ste]:
        return iter(self._stes.values())

    def gates(self) -> Iterator[Gate]:
        return iter(self._gates.values())

    def counters(self) -> Iterator[Counter]:
        return iter(self._counters.values())

    def ste(self, ste_id: str) -> Ste:
        return self._stes[ste_id]

    def gate(self, gate_id: str) -> Gate:
        return self._gates[gate_id]

    def counter(self, counter_id: str) -> Counter:
        return self._counters[counter_id]

    def edges(self) -> Iterator[Tuple[str, str, str]]:
        return iter(sorted(self._edges))

    def inputs_to(self, element_id: str, port: str = PORT_ACTIVATE) -> List[str]:
        return sorted(
            source
            for source, target, edge_port in self._edges
            if target == element_id and edge_port == port
        )

    def outputs_of(self, element_id: str) -> List[Tuple[str, str]]:
        return sorted(
            (target, port)
            for source, target, port in self._edges
            if source == element_id
        )

    def reporting_elements(self) -> List[str]:
        names = [s.ste_id for s in self._stes.values() if s.reporting]
        names += [g.gate_id for g in self._gates.values() if g.reporting]
        names += [c.counter_id for c in self._counters.values() if c.reporting]
        return sorted(names)

    # -- validation ----------------------------------------------------------

    def gate_evaluation_order(self) -> List[str]:
        """Topological order of the gate network (gates only).

        Gates evaluate combinationally, so a cycle through gates is a
        combinational loop and is rejected.
        """
        dependencies: Dict[str, Set[str]] = {g: set() for g in self._gates}
        for source, target, _ in self._edges:
            if target in self._gates and source in self._gates:
                dependencies[target].add(source)
        order: List[str] = []
        resolved: Set[str] = set()
        visiting: Set[str] = set()

        def visit(gate_id: str):
            if gate_id in resolved:
                return
            if gate_id in visiting:
                raise AutomatonError(
                    f"combinational cycle through gate {gate_id!r}"
                )
            visiting.add(gate_id)
            for dependency in sorted(dependencies[gate_id]):
                visit(dependency)
            visiting.discard(gate_id)
            resolved.add(gate_id)
            order.append(gate_id)

        for gate_id in sorted(self._gates):
            visit(gate_id)
        return order

    def validate(self):
        if not self._stes:
            raise AutomatonError("circuit has no STEs")
        if not any(s.start is not StartKind.NONE for s in self._stes.values()):
            raise AutomatonError("circuit has no start states")
        for gate in self._gates.values():
            fan_in = len(self.inputs_to(gate.gate_id))
            if gate.kind is GateKind.NOT and fan_in != 1:
                raise AutomatonError(
                    f"inverter {gate.gate_id!r} needs exactly one input"
                )
            if gate.kind is not GateKind.NOT and fan_in < 1:
                raise AutomatonError(f"gate {gate.gate_id!r} has no inputs")
        for counter in self._counters.values():
            if not self.inputs_to(counter.counter_id, PORT_COUNT):
                raise AutomatonError(
                    f"counter {counter.counter_id!r} has no count input"
                )
        self.gate_evaluation_order()  # raises on combinational cycles


def lower_circuit(circuit: CircuitAutomaton) -> HomogeneousAutomaton:
    """Lower a circuit to a pure homogeneous automaton, where possible.

    OR gates are pure wiring: every (input -> OR -> output) pair becomes a
    direct edge, and a *reporting* OR folds its report onto each input
    element.  Counters, AND, and NOT gates have no STE encoding — the
    Cache Automaton architecture (and this compiler) handles only
    homogeneous NFAs, so their presence raises :class:`CompileError`.
    """
    circuit.validate()
    for counter in circuit.counters():
        raise CompileError(
            f"counter {counter.counter_id!r}: counters are not mappable to "
            "Cache Automaton STE arrays (AP-only feature)"
        )
    for gate in circuit.gates():
        if gate.kind is not GateKind.OR:
            raise CompileError(
                f"gate {gate.gate_id!r} ({gate.kind.value}): only OR gates "
                "lower to pure state wiring"
            )

    # Resolve each OR gate to its transitive STE inputs (gates may chain).
    def ste_sources(element_id: str, seen: frozenset = frozenset()) -> Set[str]:
        if element_id in seen:
            raise AutomatonError(f"combinational cycle at {element_id!r}")
        if element_id in {s.ste_id for s in circuit.stes()}:
            return {element_id}
        sources: Set[str] = set()
        for source in circuit.inputs_to(element_id):
            sources |= ste_sources(source, seen | {element_id})
        return sources

    lowered = HomogeneousAutomaton(circuit.circuit_id)
    reporting_extra: Dict[str, str] = {}
    for gate in circuit.gates():
        if gate.reporting:
            for source in ste_sources(gate.gate_id):
                reporting_extra[source] = gate.report_code or gate.gate_id

    for ste in circuit.stes():
        reporting = ste.reporting or ste.ste_id in reporting_extra
        report_code = ste.report_code
        if ste.ste_id in reporting_extra and report_code is None:
            report_code = reporting_extra[ste.ste_id]
        lowered.add_ste(
            ste.ste_id,
            ste.symbols,
            start=ste.start,
            reporting=reporting,
            report_code=report_code,
        )

    # Direct STE->STE edges plus the flattened OR wiring.
    for source, target, port in circuit.edges():
        if port != PORT_ACTIVATE or target not in {
            s.ste_id for s in circuit.stes()
        }:
            continue
        for real_source in ste_sources(source):
            lowered.add_edge(real_source, target)
    return lowered
