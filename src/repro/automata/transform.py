"""Classical NFA -> homogeneous (ANML) automaton conversion.

This is the transformation illustrated in Figure 1 of the paper: a
classical state with incoming edges on several different labels is split
into one homogeneous state per incoming label (state ``S1`` becomes
``S1_a``, ``S1_b``, ``S1_c``).  The construction follows the label-splitting
technique of Roy et al. (ICPP 2016, paper reference [35]).

Correctness invariant: after consuming any input prefix, the set of active
classical states equals the projection (drop the label component) of the
set of active homogeneous states.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.automata.anml import HomogeneousAutomaton, StartKind
from repro.automata.epsilon import remove_epsilon
from repro.automata.nfa import Nfa, StateId
from repro.automata.symbols import SymbolSet
from repro.errors import AutomatonError


def to_homogeneous(
    nfa: Nfa,
    *,
    automaton_id: str = "converted",
    start: StartKind = StartKind.START_OF_DATA,
) -> HomogeneousAutomaton:
    """Convert a classical NFA into an equivalent homogeneous automaton.

    ``start`` selects the self-activation semantics of the result's start
    states: :attr:`StartKind.START_OF_DATA` preserves whole-input
    acceptance, :attr:`StartKind.ALL_INPUT` yields the unanchored-search
    machine used by pattern-scanning workloads.

    Epsilon transitions are eliminated first.  NFAs that accept the empty
    string cannot be represented (a homogeneous automaton reports only
    after consuming at least one symbol) and are rejected.
    """
    nfa.validate()
    if nfa.has_epsilon():
        nfa = remove_epsilon(nfa)
    start_closure = nfa.start_states
    if start_closure & nfa.accept_states:
        raise AutomatonError(
            "NFA accepts the empty string; homogeneous automata report only "
            "after consuming input"
        )

    homogeneous = HomogeneousAutomaton(automaton_id)
    # Homogeneous states are (classical state, incoming label) pairs.  Group
    # incoming edges by their exact label set: one split state per group.
    split_ids: Dict[Tuple[StateId, SymbolSet], str] = {}

    def split_state(target: StateId, symbols: SymbolSet) -> str:
        key = (target, symbols)
        if key not in split_ids:
            ste_id = f"{target}#{len(split_ids)}"
            split_ids[key] = ste_id
            homogeneous.add_ste(
                ste_id,
                symbols,
                start=StartKind.NONE,
                reporting=target in nfa.accept_states,
            )
        return split_ids[key]

    # Create every split state up front.
    for transition in nfa.all_transitions():
        split_state(transition.target, transition.symbols)

    # Wire edges: (q, L) -> (q', L') whenever classical q --L'--> q'.
    for transition in nfa.all_transitions():
        target_split = split_state(transition.target, transition.symbols)
        for follow_symbols, follow_target in nfa.transitions_from(transition.target):
            homogeneous.add_edge(
                target_split, split_state(follow_target, follow_symbols)
            )

    # Start states: every split state fed directly by a classical start
    # state self-activates with the requested start kind.
    for state in start_closure:
        for symbols, target in nfa.transitions_from(state):
            ste_id = split_state(target, symbols)
            ste = homogeneous.ste(ste_id)
            if ste.start is StartKind.NONE:
                homogeneous.replace_ste(
                    type(ste)(
                        ste.ste_id, ste.symbols, start, ste.reporting, ste.report_code
                    )
                )
    if not homogeneous.start_states():
        raise AutomatonError("NFA start states have no outgoing transitions")
    return homogeneous


def homogeneous_to_nfa(automaton: HomogeneousAutomaton) -> Nfa:
    """Embed a homogeneous automaton back into the classical model.

    The result accepts exactly the inputs on whose *last* symbol the
    homogeneous automaton reports — including the scanning semantics:
    start-of-data states arm only at position 0 (fed by the virtual start
    state), while all-input states re-arm at every position (fed by a
    "floor" state that self-loops on every symbol).  Consequently a plain
    ``determinize(..., scanning=False)`` of the result already implements
    the scanning machine, and anchored (``^``) states stay anchored.
    """
    nfa = Nfa()
    virtual_start = "__start__"
    floor = "__floor__"
    nfa.add_state(virtual_start, start=True)
    needs_floor = any(
        ste.start is StartKind.ALL_INPUT for ste in automaton.stes()
    )
    if needs_floor:
        nfa.add_state(floor)
        nfa.add_epsilon(virtual_start, floor)
        nfa.add_transition(floor, SymbolSet.any(), floor)
    for ste in automaton.stes():
        nfa.add_state(ste.ste_id, accept=ste.reporting)
        if ste.start is StartKind.START_OF_DATA:
            nfa.add_transition(virtual_start, ste.symbols, ste.ste_id)
        elif ste.start is StartKind.ALL_INPUT:
            nfa.add_transition(floor, ste.symbols, ste.ste_id)
    for source, target in automaton.edges():
        nfa.add_transition(source, automaton.ste(target).symbols, target)
    return nfa


def active_projection(active_split_states: Set[str]) -> Set[str]:
    """Project split-state ids ``q#k`` back to their classical state ``q``."""
    return {ste_id.rsplit("#", 1)[0] for ste_id in active_split_states}
