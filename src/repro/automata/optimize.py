"""Automaton optimisation passes for the space-optimised design point.

The paper's ``CA_S`` design runs NFAs through redundancy-removal first
(Section 3.1): patterns sharing common prefixes (``art`` / ``artifact``)
are matched once, which shrinks the automaton and its average active set,
at the cost of merging connected components into larger ones that need
richer interconnect.

Two language-preserving merges are provided:

* **prefix merging** — states with identical label, start kind, report
  behaviour and *predecessor set* activate under exactly the same
  conditions, so they can be fused (their successor sets union);
* **suffix merging** — dually, non-start states with identical label,
  report behaviour and *successor set* are indistinguishable going
  forward and can be fused.

Both run to a fixed point.  ``prune_unreachable`` / ``prune_dead`` remove
states that can never activate or can never contribute to a report.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, FrozenSet, List, Tuple

from repro.automata.anml import HomogeneousAutomaton, StartKind

#: Sentinel standing for "the state itself" in neighbour-set signatures,
#: so that states with self-loops can still be recognised as equivalent.
_SELF = "\x00__self__"


def _neighbour_signature(ste_id: str, neighbours: set) -> FrozenSet[str]:
    return frozenset(_SELF if n == ste_id else n for n in neighbours)


def _merge_groups(
    automaton: HomogeneousAutomaton,
    groups: Dict[Tuple, List[str]],
) -> HomogeneousAutomaton:
    """Rebuild the automaton fusing each group into its first member."""
    representative: Dict[str, str] = {}
    for members in groups.values():
        keep = members[0]
        for ste_id in members:
            representative[ste_id] = keep
    merged = HomogeneousAutomaton(automaton.automaton_id)
    for ste in automaton.stes():
        if representative[ste.ste_id] == ste.ste_id:
            merged.add_ste(
                ste.ste_id,
                ste.symbols,
                start=ste.start,
                reporting=ste.reporting,
                report_code=ste.report_code,
            )
    for source, target in automaton.edges():
        merged.add_edge(representative[source], representative[target])
    return merged


def _one_merge_pass(
    automaton: HomogeneousAutomaton, *, direction: str
) -> Tuple[HomogeneousAutomaton, int]:
    """One grouping pass; returns (new automaton, number of states removed)."""
    groups: Dict[Tuple, List[str]] = {}
    for ste in automaton.stes():
        if direction == "prefix":
            neighbours = _neighbour_signature(
                ste.ste_id, automaton.predecessors(ste.ste_id)
            )
        else:
            if ste.start is not StartKind.NONE:
                # A start state carries activation conditions a non-start
                # state lacks; merging by suffix would change the language.
                neighbours = frozenset({f"\x00__unique__{ste.ste_id}"})
            else:
                neighbours = _neighbour_signature(
                    ste.ste_id, automaton.successors(ste.ste_id)
                )
        key = (
            ste.symbols,
            ste.start,
            ste.reporting,
            ste.report_code,
            neighbours,
        )
        groups.setdefault(key, []).append(ste.ste_id)
    removed = sum(len(members) - 1 for members in groups.values())
    if removed == 0:
        return automaton, 0
    return _merge_groups(automaton, groups), removed


def merge_common_prefixes(automaton: HomogeneousAutomaton) -> HomogeneousAutomaton:
    """Fuse states reachable by identical prefixes, to a fixed point."""
    current = automaton
    while True:
        current, removed = _one_merge_pass(current, direction="prefix")
        if removed == 0:
            return current


def merge_common_suffixes(automaton: HomogeneousAutomaton) -> HomogeneousAutomaton:
    """Fuse states with identical futures, to a fixed point."""
    current = automaton
    while True:
        current, removed = _one_merge_pass(current, direction="suffix")
        if removed == 0:
            return current


def space_optimize(automaton: HomogeneousAutomaton) -> HomogeneousAutomaton:
    """The full CA_S automaton transform: prune, then prefix+suffix merge.

    Merging prefixes can expose new suffix merges and vice versa, so the
    two alternate until neither makes progress.
    """
    current = prune_dead(prune_unreachable(automaton))
    while True:
        before = len(current)
        current = merge_common_prefixes(current)
        current = merge_common_suffixes(current)
        if len(current) == before:
            return current


def prune_unreachable(automaton: HomogeneousAutomaton) -> HomogeneousAutomaton:
    """Drop states not reachable from any start state."""
    reachable = {s.ste_id for s in automaton.start_states()}
    frontier = list(reachable)
    while frontier:
        ste_id = frontier.pop()
        for target in automaton.successors(ste_id):
            if target not in reachable:
                reachable.add(target)
                frontier.append(target)
    return _induced(automaton, reachable)


def prune_dead(automaton: HomogeneousAutomaton) -> HomogeneousAutomaton:
    """Drop states from which no reporting state is reachable."""
    useful = {s.ste_id for s in automaton.reporting_states()}
    frontier = list(useful)
    while frontier:
        ste_id = frontier.pop()
        for source in automaton.predecessors(ste_id):
            if source not in useful:
                useful.add(source)
                frontier.append(source)
    return _induced(automaton, useful)


def _induced(
    automaton: HomogeneousAutomaton, keep: set
) -> HomogeneousAutomaton:
    if keep == set(automaton.ste_ids()):
        return automaton
    induced = HomogeneousAutomaton(automaton.automaton_id)
    for ste in automaton.stes():
        if ste.ste_id in keep:
            induced.add_ste(
                ste.ste_id,
                ste.symbols,
                start=ste.start,
                reporting=ste.reporting,
                report_code=ste.report_code,
            )
    for source, target in automaton.edges():
        if source in keep and target in keep:
            induced.add_edge(source, target)
    return induced


def label_report_codes(
    automaton: HomogeneousAutomaton, codes: Dict[str, str]
) -> HomogeneousAutomaton:
    """Attach report codes to reporting states (id -> code)."""
    updated = automaton.copy()
    for ste_id, code in codes.items():
        ste = updated.ste(ste_id)
        if ste.reporting:
            updated.replace_ste(replace(ste, report_code=code))
    return updated
