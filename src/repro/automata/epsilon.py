"""Epsilon-transition elimination for classical NFAs.

The Thompson construction produces epsilon edges; the homogeneous model
has no counterpart for them, so they are removed before conversion.  The
standard closure construction is used: every state gains the consuming
transitions and acceptance of its epsilon closure.
"""

from __future__ import annotations

from repro.automata.nfa import Nfa


def remove_epsilon(nfa: Nfa) -> Nfa:
    """An equivalent NFA with no epsilon transitions.

    For every state *q* and every state *r* in the epsilon closure of *q*:
    *q* inherits each consuming transition of *r*, and *q* becomes
    accepting if *r* is.  Unreachable states are trimmed afterwards.
    """
    result = Nfa()
    closures = {state: nfa.epsilon_closure({state}) for state in nfa.states}
    accept_states = nfa.accept_states
    for state in nfa.states:
        closure = closures[state]
        result.add_state(
            state,
            start=state in nfa.start_states,
            accept=bool(closure & accept_states),
        )
    for state in nfa.states:
        for reachable in closures[state]:
            for symbols, target in nfa.transitions_from(reachable):
                result.add_transition(state, symbols, target)
    return result.trim()
