"""Classical non-deterministic finite automata.

This is the textbook quintuple model ``(Q, sigma, delta, q0, F)`` from
Section 2.1 of the paper, extended with epsilon transitions so it can be
the target of a Thompson construction.  Transitions are labelled with
:class:`~repro.automata.symbols.SymbolSet` so a single edge covers a whole
character class.

The classical model is a *construction* intermediate: the Cache Automaton
hardware executes homogeneous (ANML-style) automata, obtained from this
model via :mod:`repro.automata.transform`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Iterator, List, Set, Tuple

from repro.automata.symbols import SymbolSet
from repro.errors import AutomatonError

StateId = Hashable


@dataclass(frozen=True)
class Transition:
    """One labelled edge ``source --symbols--> target``."""

    source: StateId
    symbols: SymbolSet
    target: StateId


class Nfa:
    """A classical NFA with character-class edges and epsilon transitions.

    States are opaque hashable identifiers (strings in most of this
    library).  The class is mutable during construction; analysis passes
    treat it as read-only.
    """

    def __init__(self):
        self._states: Set[StateId] = set()
        self._start_states: Set[StateId] = set()
        self._accept_states: Set[StateId] = set()
        # state -> list of (symbols, target)
        self._transitions: Dict[StateId, List[Tuple[SymbolSet, StateId]]] = {}
        # state -> set of epsilon targets
        self._epsilon: Dict[StateId, Set[StateId]] = {}

    # -- construction ------------------------------------------------------

    def add_state(
        self, state: StateId, *, start: bool = False, accept: bool = False
    ) -> StateId:
        """Add ``state`` (idempotent); optionally mark it start/accepting."""
        self._states.add(state)
        if start:
            self._start_states.add(state)
        if accept:
            self._accept_states.add(state)
        return state

    def add_transition(self, source: StateId, symbols: SymbolSet, target: StateId):
        """Add edge ``source --symbols--> target``; endpoints are auto-added."""
        if symbols.is_empty():
            raise AutomatonError("transitions must match at least one symbol")
        self.add_state(source)
        self.add_state(target)
        self._transitions.setdefault(source, []).append((symbols, target))

    def add_epsilon(self, source: StateId, target: StateId):
        """Add an epsilon edge (taken without consuming input)."""
        self.add_state(source)
        self.add_state(target)
        self._epsilon.setdefault(source, set()).add(target)

    def set_start(self, state: StateId):
        self.add_state(state, start=True)

    def set_accept(self, state: StateId):
        self.add_state(state, accept=True)

    # -- structure queries -------------------------------------------------

    @property
    def states(self) -> Set[StateId]:
        return set(self._states)

    @property
    def start_states(self) -> Set[StateId]:
        return set(self._start_states)

    @property
    def accept_states(self) -> Set[StateId]:
        return set(self._accept_states)

    def __len__(self) -> int:
        return len(self._states)

    def transitions_from(self, state: StateId) -> List[Tuple[SymbolSet, StateId]]:
        return list(self._transitions.get(state, ()))

    def epsilon_from(self, state: StateId) -> Set[StateId]:
        return set(self._epsilon.get(state, ()))

    def all_transitions(self) -> Iterator[Transition]:
        for source, edges in self._transitions.items():
            for symbols, target in edges:
                yield Transition(source, symbols, target)

    def transition_count(self) -> int:
        return sum(len(edges) for edges in self._transitions.values())

    def has_epsilon(self) -> bool:
        return any(self._epsilon.values())

    def validate(self):
        """Raise :class:`AutomatonError` on structurally invalid automata."""
        if not self._start_states:
            raise AutomatonError("NFA has no start state")
        dangling = (self._start_states | self._accept_states) - self._states
        if dangling:
            raise AutomatonError(f"start/accept states not in Q: {sorted(map(str, dangling))}")

    # -- semantics ---------------------------------------------------------

    def epsilon_closure(self, states: Iterable[StateId]) -> Set[StateId]:
        """All states reachable from ``states`` via epsilon edges alone."""
        closure = set(states)
        frontier = list(closure)
        while frontier:
            state = frontier.pop()
            for target in self._epsilon.get(state, ()):
                if target not in closure:
                    closure.add(target)
                    frontier.append(target)
        return closure

    def step(self, active: Set[StateId], symbol: int) -> Set[StateId]:
        """One consuming step: successors of ``active`` on ``symbol``."""
        successors: Set[StateId] = set()
        for state in active:
            for symbols, target in self._transitions.get(state, ()):
                if symbols.matches(symbol):
                    successors.add(target)
        return self.epsilon_closure(successors)

    def accepts(self, data: bytes) -> bool:
        """Whole-string acceptance (the automaton consumes all of ``data``)."""
        active = self.epsilon_closure(self._start_states)
        for symbol in data:
            active = self.step(active, symbol)
            if not active:
                break
        return bool(active & self._accept_states)

    def find_matches(self, data: bytes) -> List[int]:
        """Unanchored search: end offsets (1-based) at which a match completes.

        The start states are re-injected at every position, mirroring the
        start-on-all-input semantics of ANML automata.
        """
        matches = []
        start_closure = self.epsilon_closure(self._start_states)
        active: Set[StateId] = set(start_closure)
        if active & self._accept_states:
            matches.append(0)
        for offset, symbol in enumerate(data):
            active = self.step(active, symbol)
            active |= start_closure
            if active & self._accept_states:
                matches.append(offset + 1)
        return matches

    # -- transformations ---------------------------------------------------

    def reachable_states(self) -> Set[StateId]:
        """States reachable from a start state via any edge."""
        seen = set(self._start_states)
        frontier = list(seen)
        while frontier:
            state = frontier.pop()
            neighbours = [t for _, t in self._transitions.get(state, ())]
            neighbours.extend(self._epsilon.get(state, ()))
            for target in neighbours:
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return seen

    def trim(self) -> "Nfa":
        """A copy with unreachable states dropped."""
        keep = self.reachable_states()
        trimmed = Nfa()
        for state in keep:
            trimmed.add_state(
                state,
                start=state in self._start_states,
                accept=state in self._accept_states,
            )
        for source in keep:
            for symbols, target in self._transitions.get(source, ()):
                if target in keep:
                    trimmed.add_transition(source, symbols, target)
            for target in self._epsilon.get(source, ()):
                if target in keep:
                    trimmed.add_epsilon(source, target)
        return trimmed

    def relabelled(self, prefix: str) -> "Nfa":
        """A copy whose states are renamed ``{prefix}0, {prefix}1, ...``.

        Useful before :func:`union` to guarantee disjoint state spaces.
        """
        order = sorted(self._states, key=str)
        names = {state: f"{prefix}{index}" for index, state in enumerate(order)}
        renamed = Nfa()
        for state in order:
            renamed.add_state(
                names[state],
                start=state in self._start_states,
                accept=state in self._accept_states,
            )
        for source in order:
            for symbols, target in self._transitions.get(source, ()):
                renamed.add_transition(names[source], symbols, names[target])
            for target in self._epsilon.get(source, ()):
                renamed.add_epsilon(names[source], names[target])
        return renamed

    def __repr__(self) -> str:
        return (
            f"Nfa(states={len(self._states)}, transitions={self.transition_count()},"
            f" starts={len(self._start_states)}, accepts={len(self._accept_states)})"
        )


def union(automata: Iterable[Nfa]) -> Nfa:
    """Disjoint union of several NFAs (multi-pattern matching).

    Each component keeps its own start and accept states; state names are
    prefixed with the component index to avoid collisions.
    """
    combined = Nfa()
    for index, nfa in enumerate(automata):
        part = nfa.relabelled(f"u{index}_")
        for state in part.states:
            combined.add_state(
                state,
                start=state in part.start_states,
                accept=state in part.accept_states,
            )
        for transition in part.all_transitions():
            combined.add_transition(
                transition.source, transition.symbols, transition.target
            )
        for source in part.states:
            for target in part.epsilon_from(source):
                combined.add_epsilon(source, target)
    return combined
