"""Symbol sets over the 8-bit input alphabet.

A Cache Automaton STE (state transition element) is labelled by the set of
input symbols it matches.  In hardware this label is materialised as a
256-bit one-hot column of an SRAM array (one bit per possible byte value);
in software we model it with :class:`SymbolSet`, an immutable 256-bit set
backed by a Python integer bitmask.

The class supports the label vocabulary used by ANML and by common regex
character classes: single symbols, ranges, unions, complements, and the
``*`` (match-all) wildcard.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Union

import numpy as np

from repro.errors import SymbolSetError

ALPHABET_SIZE = 256
_FULL_MASK = (1 << ALPHABET_SIZE) - 1

SymbolLike = Union[int, str, bytes]


def _symbol_value(symbol: SymbolLike) -> int:
    """Normalise a symbol given as int, 1-char str, or 1-byte bytes to 0..255."""
    if isinstance(symbol, bool):
        raise SymbolSetError(f"booleans are not symbols: {symbol!r}")
    if isinstance(symbol, int):
        value = symbol
    elif isinstance(symbol, str):
        if len(symbol) != 1:
            raise SymbolSetError(f"expected a single character, got {symbol!r}")
        value = ord(symbol)
    elif isinstance(symbol, (bytes, bytearray)):
        if len(symbol) != 1:
            raise SymbolSetError(f"expected a single byte, got {symbol!r}")
        value = symbol[0]
    else:
        raise SymbolSetError(f"cannot interpret {symbol!r} as a symbol")
    if not 0 <= value < ALPHABET_SIZE:
        raise SymbolSetError(f"symbol value {value} outside byte alphabet [0, 255]")
    return value


class SymbolSet:
    """Immutable set of byte symbols, the label domain of an STE.

    Instances are hashable and support the standard set algebra via
    operators (``|``, ``&``, ``-``, ``~``) as well as named methods.
    """

    __slots__ = ("_mask",)

    def __init__(self, symbols: Iterable[SymbolLike] = ()):
        mask = 0
        for symbol in symbols:
            mask |= 1 << _symbol_value(symbol)
        self._mask = mask

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_mask(cls, mask: int) -> "SymbolSet":
        """Build a set directly from a 256-bit integer bitmask."""
        if mask < 0 or mask > _FULL_MASK:
            raise SymbolSetError(f"mask {mask:#x} is not a 256-bit bitmask")
        instance = cls.__new__(cls)
        instance._mask = mask
        return instance

    @classmethod
    def single(cls, symbol: SymbolLike) -> "SymbolSet":
        """The singleton set containing exactly ``symbol``."""
        return cls.from_mask(1 << _symbol_value(symbol))

    @classmethod
    def from_range(cls, low: SymbolLike, high: SymbolLike) -> "SymbolSet":
        """The inclusive range ``[low, high]`` of byte values."""
        low_value = _symbol_value(low)
        high_value = _symbol_value(high)
        if low_value > high_value:
            raise SymbolSetError(f"empty range: low {low_value} > high {high_value}")
        width = high_value - low_value + 1
        return cls.from_mask(((1 << width) - 1) << low_value)

    @classmethod
    def from_string(cls, text: Union[str, bytes]) -> "SymbolSet":
        """The set of all characters appearing in ``text``."""
        if isinstance(text, str):
            text = text.encode("latin-1")
        mask = 0
        for value in text:
            mask |= 1 << value
        return cls.from_mask(mask)

    @classmethod
    def any(cls) -> "SymbolSet":
        """The ``*`` wildcard: matches every byte."""
        return cls.from_mask(_FULL_MASK)

    @classmethod
    def none(cls) -> "SymbolSet":
        """The empty set (matches nothing)."""
        return cls.from_mask(0)

    # -- queries -----------------------------------------------------------

    @property
    def mask(self) -> int:
        """The underlying 256-bit integer bitmask."""
        return self._mask

    def matches(self, symbol: SymbolLike) -> bool:
        """True if ``symbol`` is in the set."""
        return bool(self._mask >> _symbol_value(symbol) & 1)

    def is_empty(self) -> bool:
        return self._mask == 0

    def is_full(self) -> bool:
        return self._mask == _FULL_MASK

    def cardinality(self) -> int:
        """Number of symbols in the set."""
        return self._mask.bit_count()

    def symbols(self) -> Iterator[int]:
        """Iterate the member byte values in increasing order."""
        mask = self._mask
        while mask:
            low_bit = mask & -mask
            yield low_bit.bit_length() - 1
            mask ^= low_bit

    def ranges(self) -> Iterator[tuple[int, int]]:
        """Iterate maximal inclusive ranges ``(low, high)`` covering the set."""
        start = None
        previous = None
        for value in self.symbols():
            if start is None:
                start = previous = value
            elif value == previous + 1:
                previous = value
            else:
                yield (start, previous)
                start = previous = value
        if start is not None:
            yield (start, previous)

    # -- algebra -----------------------------------------------------------

    def union(self, other: "SymbolSet") -> "SymbolSet":
        return SymbolSet.from_mask(self._mask | other._mask)

    def intersection(self, other: "SymbolSet") -> "SymbolSet":
        return SymbolSet.from_mask(self._mask & other._mask)

    def difference(self, other: "SymbolSet") -> "SymbolSet":
        return SymbolSet.from_mask(self._mask & ~other._mask & _FULL_MASK)

    def complement(self) -> "SymbolSet":
        return SymbolSet.from_mask(~self._mask & _FULL_MASK)

    def issubset(self, other: "SymbolSet") -> bool:
        return self._mask & ~other._mask == 0

    def isdisjoint(self, other: "SymbolSet") -> bool:
        return self._mask & other._mask == 0

    __or__ = union
    __and__ = intersection
    __sub__ = difference

    def __invert__(self) -> "SymbolSet":
        return self.complement()

    def __contains__(self, symbol: SymbolLike) -> bool:
        return self.matches(symbol)

    def __iter__(self) -> Iterator[int]:
        return self.symbols()

    def __len__(self) -> int:
        return self.cardinality()

    def __bool__(self) -> bool:
        return self._mask != 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SymbolSet):
            return NotImplemented
        return self._mask == other._mask

    def __hash__(self) -> int:
        return hash(self._mask)

    # -- hardware views ----------------------------------------------------

    def to_onehot(self) -> np.ndarray:
        """The 256-element uint8 one-hot column stored in the SRAM array.

        Bit position *i* (row *i* of the array) is 1 exactly when byte value
        *i* is in the set; broadcasting input symbol *i* as a row address
        reads this bit out as the state's match result.
        """
        column = np.zeros(ALPHABET_SIZE, dtype=np.uint8)
        for value in self.symbols():
            column[value] = 1
        return column

    @classmethod
    def from_onehot(cls, column: np.ndarray) -> "SymbolSet":
        """Inverse of :meth:`to_onehot`."""
        if column.shape != (ALPHABET_SIZE,):
            raise SymbolSetError(
                f"one-hot column must have shape (256,), got {column.shape}"
            )
        mask = 0
        for value in np.flatnonzero(column):
            mask |= 1 << int(value)
        return cls.from_mask(mask)

    # -- presentation ------------------------------------------------------

    def canonical_expression(self) -> str:
        """A compact, ANML-flavoured textual form such as ``[a-c x 0-9]``."""
        if self.is_full():
            return "*"
        if self.is_empty():
            return "[]"
        parts = []
        for low, high in self.ranges():
            if low == high:
                parts.append(_printable(low))
            else:
                parts.append(f"{_printable(low)}-{_printable(high)}")
        return "[" + " ".join(parts) + "]"

    def __repr__(self) -> str:
        return f"SymbolSet({self.canonical_expression()})"


def equivalence_classes(
    sets: Iterable[SymbolSet],
) -> tuple[np.ndarray, np.ndarray]:
    """Partition the byte alphabet by membership signature across ``sets``.

    Two byte values are equivalent exactly when every set in ``sets``
    either contains both or neither — no automaton labelled from
    ``sets`` can distinguish them, so transition tables may be indexed
    by class instead of by byte.  Returns ``(class_of, representatives)``
    where ``class_of`` maps each byte value to its dense class id and
    ``representatives[c]`` is the smallest byte value in class ``c``.
    Class ids are assigned in order of each class's smallest member, so
    the numbering is canonical for a given partition regardless of the
    iteration order of ``sets``.
    """
    masks = [symbol_set.mask for symbol_set in sets]
    raw = b"".join(mask.to_bytes(32, "little") for mask in masks)
    columns = np.unpackbits(
        np.frombuffer(raw, dtype=np.uint8).reshape(len(masks), 32),
        axis=1,
        bitorder="little",
    ).T  # (256, n_sets): row b is byte b's membership signature
    return partition_byte_columns(columns)


def partition_byte_columns(
    columns: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Class map of a ``(256, ...)`` per-byte signature matrix.

    Bytes with identical rows share a class; ids are assigned in order
    of each class's smallest byte (canonical numbering shared by the
    automaton- and kernel-derived alphabets).  Returns ``(class_of,
    representatives)`` as :func:`equivalence_classes` does.
    """
    _, inverse = np.unique(columns, axis=0, return_inverse=True)
    inverse = inverse.reshape(ALPHABET_SIZE)
    first_seen = np.full(int(inverse.max()) + 1, ALPHABET_SIZE, dtype=np.int64)
    np.minimum.at(first_seen, inverse, np.arange(ALPHABET_SIZE))
    order = np.argsort(first_seen, kind="stable")
    remap = np.empty_like(order)
    remap[order] = np.arange(order.size)
    class_of = remap[inverse].astype(np.int32)
    representatives = first_seen[order].astype(np.uint8)
    return class_of, representatives


def _printable(value: int) -> str:
    """Render a byte value as itself when printable, else as \\xNN."""
    character = chr(value)
    if character.isprintable() and character not in " -[]\\":
        return character
    return f"\\x{value:02x}"


#: Shared wildcard instance; SymbolSet is immutable so sharing is safe.
ANY = SymbolSet.any()

#: Shared empty instance.
NONE = SymbolSet.none()
