"""Fault-injection campaign runner (AVF-style vulnerability table).

A campaign compiles one automaton into a
:class:`~repro.backends.artifact.CompiledArtifact`, instantiates the
registry's ``fault-injected`` backend on it, scans one input clean to
fix the reference report signature (cross-checked against the golden
interpreter), then runs ``trials`` single-fault experiments: each trial
draws exactly one :class:`~repro.faults.models.FaultEvent` for a fault
site chosen round-robin over the config's enabled sites, replays the
input under that fault, and classifies the outcome —

* **masked** — the report signature is bit-identical to the clean run;
* **detected** — the per-column match-parity check fired;
* **sdc** — silent data corruption: reports differ, nothing fired.

One fault per trial keeps attribution unambiguous (the architectural
vulnerability factor of a site is just its SDC fraction), and per-trial
seeding from ``(campaign seed, trial index)`` makes every campaign fully
reproducible — the same seed always injects the same faults in the same
order, regardless of trial count changes elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.automata.anml import HomogeneousAutomaton
from repro.backends import create_backend
from repro.backends.artifact import CompiledArtifact
from repro.compiler import compile_automaton
from repro.core.design import CA_P, DesignPoint
from repro.errors import FaultError
from repro.faults import (
    ALL_SITES,
    DETECTED,
    MASKED,
    OUTCOMES,
    SDC,
    FaultConfig,
    FaultSite,
    classify,
    draw_event,
)
from repro.sim.golden import match_offsets


@dataclass(frozen=True)
class CampaignRow:
    """Per-site outcome tally of one campaign."""

    site: str
    trials: int
    masked: int
    detected: int
    sdc: int

    @property
    def avf(self) -> float:
        """Architectural vulnerability factor: SDC fraction of trials."""
        if self.trials == 0:
            return 0.0
        return self.sdc / self.trials

    @property
    def coverage(self) -> float:
        """Detection coverage among non-masked outcomes."""
        visible = self.detected + self.sdc
        if visible == 0:
            return 1.0
        return self.detected / visible


@dataclass(frozen=True)
class CampaignResult:
    """Full result of :func:`run_campaign`."""

    seed: int
    trials: int
    input_bytes: int
    states: int
    rows: Tuple[CampaignRow, ...]
    #: (site, kind, cycle, bit, outcome) per trial, in trial order.
    outcomes: Tuple[Tuple[str, str, int, int, str], ...]

    def totals(self) -> Dict[str, int]:
        return {
            MASKED: sum(row.masked for row in self.rows),
            DETECTED: sum(row.detected for row in self.rows),
            SDC: sum(row.sdc for row in self.rows),
        }

    def table_rows(self) -> List[List]:
        """Rows for :func:`repro.eval.tables.format_table`."""
        table: List[List] = [
            ["Site", "Trials", "Masked", "Detected", "SDC", "AVF", "Coverage"]
        ]
        for row in self.rows:
            table.append(
                [
                    row.site,
                    row.trials,
                    row.masked,
                    row.detected,
                    row.sdc,
                    f"{row.avf:.3f}",
                    f"{row.coverage:.3f}",
                ]
            )
        totals = self.totals()
        total_trials = sum(row.trials for row in self.rows)
        visible = totals[DETECTED] + totals[SDC]
        table.append(
            [
                "all",
                total_trials,
                totals[MASKED],
                totals[DETECTED],
                totals[SDC],
                f"{totals[SDC] / total_trials:.3f}" if total_trials else "0.000",
                f"{totals[DETECTED] / visible:.3f}" if visible else "1.000",
            ]
        )
        return table


def run_campaign(
    automaton: HomogeneousAutomaton,
    data: bytes,
    *,
    design: DesignPoint = CA_P,
    trials: int = 48,
    seed: int = 7,
    config: Optional[FaultConfig] = None,
) -> CampaignResult:
    """Run a single-fault injection campaign; see the module docstring."""
    if trials <= 0:
        raise FaultError(f"trial count must be positive, got {trials}")
    if len(data) == 0:
        raise FaultError("campaign input must be non-empty")
    if config is None:
        config = ALL_SITES
    config.validate()
    sites: Sequence[FaultSite] = config.enabled_sites()
    if not sites:
        raise FaultError("no fault sites enabled (all rates are zero)")

    artifact = CompiledArtifact.from_mapping(compile_automaton(automaton, design))
    backend = create_backend("fault-injected", artifact)
    mapping = artifact.mapping

    reference = backend.run_report(data)
    if reference.detected:
        raise FaultError("parity check fired on the clean reference run")
    golden = match_offsets(mapping.automaton, data)
    if reference.report_offsets() != golden:
        raise FaultError(
            "fault harness diverges from the golden interpreter on the "
            "clean run; refusing to attribute outcomes to faults"
        )

    tallies = {
        site: {MASKED: 0, DETECTED: 0, SDC: 0} for site in sites
    }
    outcomes: List[Tuple[str, str, int, int, str]] = []
    for trial in range(trials):
        site = sites[trial % len(sites)]
        rng = np.random.default_rng([seed, trial])
        event = draw_event(
            rng, site, config, len(data),
            backend.state_bits, backend.edge_bits,
        )
        outcome = classify(backend.run_report(data, [event]), reference)
        assert outcome in OUTCOMES
        tallies[site][outcome] += 1
        outcomes.append(
            (site.value, event.kind, event.cycle, event.bit, outcome)
        )

    rows = tuple(
        CampaignRow(
            site=site.value,
            trials=sum(tallies[site].values()),
            masked=tallies[site][MASKED],
            detected=tallies[site][DETECTED],
            sdc=tallies[site][SDC],
        )
        for site in sites
    )
    return CampaignResult(
        seed=seed,
        trials=trials,
        input_bytes=len(data),
        states=len(mapping.automaton),
        rows=rows,
        outcomes=tuple(outcomes),
    )
