"""Experiment runners: one per paper table and figure.

Every function returns structured rows (first row = header) that
:func:`repro.eval.tables.format_table` renders; the benchmark harness in
``benchmarks/`` and the paper-vs-measured record in ``EXPERIMENTS.md``
are generated from these.

The per-benchmark pipeline (used by Table 1 and Figures 7-9) is:

1. build the baseline automaton (the CA_P input) and its space-optimised
   variant (the CA_S input, via :func:`repro.automata.optimize.space_optimize`);
2. compile each onto its design with the Cache Automaton compiler;
3. scan the benchmark's input stream on the registry's packed-kernel
   execution backend to collect the activity profile;
4. feed profiles to the energy model and designs to the timing model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.automata.components import component_stats
from repro.backends import create_backend
from repro.backends.artifact import CompiledArtifact
from repro.baselines.ap import ApModel, CpuReferenceModel
from repro.baselines.asic import ca_operating_point, table5_rows
from repro.compiler import Mapping, compile_automaton, compile_space_optimized
from repro.core.design import CA_64, CA_P, CA_S
from repro.core.energy import ActivityProfile, EnergyModel
from repro.core.params import AP
from repro.workloads.suite import Benchmark, build_suite

#: Default input-stream length for activity profiling.  The paper uses
#: 10 MB traces; trends stabilise far earlier, and CI needs to finish.
DEFAULT_INPUT_LENGTH = 20_000


@dataclass
class BenchmarkEvaluation:
    """Everything measured for one benchmark under both designs."""

    benchmark: Benchmark
    perf_mapping: Mapping
    space_mapping: Mapping
    perf_profile: ActivityProfile
    space_profile: ActivityProfile
    perf_avg_active_states: float
    space_avg_active_states: float


def evaluate_benchmark(
    benchmark: Benchmark,
    *,
    input_length: int = DEFAULT_INPUT_LENGTH,
    seed: int = 1,
) -> BenchmarkEvaluation:
    """Run the full per-benchmark pipeline for both design points."""
    baseline = benchmark.build()
    perf_mapping = compile_automaton(baseline, CA_P)
    space_mapping = compile_space_optimized(baseline, CA_S)
    data = benchmark.input_stream(input_length, seed)
    perf_backend = create_backend(
        "packed-kernel", CompiledArtifact.from_mapping(perf_mapping)
    )
    space_backend = create_backend(
        "packed-kernel", CompiledArtifact.from_mapping(space_mapping)
    )
    perf_run = perf_backend.scan(data, collect_reports=False)
    space_run = space_backend.scan(data, collect_reports=False)
    return BenchmarkEvaluation(
        benchmark=benchmark,
        perf_mapping=perf_mapping,
        space_mapping=space_mapping,
        perf_profile=perf_run.profile,
        space_profile=space_run.profile,
        perf_avg_active_states=perf_run.stats.average_active_states,
        space_avg_active_states=space_run.stats.average_active_states,
    )


def evaluate_suite(
    *,
    input_length: int = DEFAULT_INPUT_LENGTH,
    seed: int = 1,
    names: Optional[Sequence[str]] = None,
    scale: float = 1.0,
) -> List[BenchmarkEvaluation]:
    benchmarks = build_suite(scale)
    if names is not None:
        wanted = set(names)
        benchmarks = [b for b in benchmarks if b.name in wanted]
    return [
        evaluate_benchmark(benchmark, input_length=input_length, seed=seed)
        for benchmark in benchmarks
    ]


# -- Table 1: benchmark characteristics -------------------------------------------


def table1(evaluations: List[BenchmarkEvaluation]) -> List[tuple]:
    rows = [(
        "Benchmark",
        "P.States", "P.CCs", "P.LargestCC", "P.AvgActive",
        "S.States", "S.CCs", "S.LargestCC", "S.AvgActive",
    )]
    for evaluation in evaluations:
        perf_stats = component_stats(evaluation.perf_mapping.automaton)
        space_stats = component_stats(evaluation.space_mapping.automaton)
        rows.append((
            evaluation.benchmark.name,
            perf_stats.state_count,
            perf_stats.component_count,
            perf_stats.largest_component_size,
            evaluation.perf_avg_active_states,
            space_stats.state_count,
            space_stats.component_count,
            space_stats.largest_component_size,
            evaluation.space_avg_active_states,
        ))
    return rows


# -- Table 2: switch parameters -----------------------------------------------------


def table2() -> List[tuple]:
    rows = [(
        "Design", "Switch", "Size", "Count", "Delay (ps)",
        "Energy (pJ/bit)", "Area (mm2)",
    )]
    for design in (CA_P, CA_S):
        inventory = design.switch_inventory(design.states_per_slice)
        for kind, size, count, delay, energy, area in inventory.rows():
            rows.append((design.name, kind, size, count, delay, energy, area))
    return rows


# -- Table 3: pipeline delays and frequency ---------------------------------------------


def table3() -> List[tuple]:
    rows = [(
        "Design", "State-Match (ps)", "G-Switch (ps)", "L-Switch (ps)",
        "Max Freq (GHz)", "Operated (GHz)",
    )]
    for design in (CA_P, CA_S):
        timing = design.timing
        rows.append((
            design.name,
            timing.state_match_ps,
            timing.g_switch_ps,
            timing.l_switch_ps,
            timing.max_frequency_ghz,
            design.frequency_ghz,
        ))
    return rows


# -- Table 4: optimisation/parameter ablations --------------------------------------------


def table4() -> List[tuple]:
    rows = [("Design", "Achieved (GHz)", "w/o SA cycling (GHz)", "with H-Bus (GHz)")]
    for design in (CA_P, CA_S):
        rows.append((
            design.name,
            design.frequency_ghz,
            design.without_sa_cycling().frequency_ghz,
            design.with_h_bus().frequency_ghz,
        ))
    return rows


# -- Table 5: ASIC comparison on Dotstar0.9 ------------------------------------------------


def table5(
    *, input_length: int = DEFAULT_INPUT_LENGTH, seed: int = 1
) -> List[tuple]:
    from repro.workloads.suite import get_benchmark

    benchmark = get_benchmark("Dotstar09")
    evaluation = evaluate_benchmark(
        benchmark, input_length=input_length, seed=seed
    )
    points = [
        ca_operating_point(CA_P, evaluation.perf_profile),
        ca_operating_point(CA_S, evaluation.space_profile),
    ]
    return table5_rows(points)


# -- Figure 7: throughput -------------------------------------------------------------------


def fig7(evaluations: List[BenchmarkEvaluation]) -> List[tuple]:
    ap = ApModel()
    cpu = CpuReferenceModel()
    rows = [(
        "Benchmark", "AP (Gb/s)", "CA_S (Gb/s)", "CA_P (Gb/s)",
        "CA_P/AP", "CA_S/AP", "CA_P/CPU",
    )]
    for evaluation in evaluations:
        rows.append((
            evaluation.benchmark.name,
            ap.throughput_gbps,
            CA_S.throughput_gbps,
            CA_P.throughput_gbps,
            ap.speedup_of(CA_P),
            ap.speedup_of(CA_S),
            cpu.speedup_of(CA_P),
        ))
    return rows


# -- Figure 8: cache utilisation ----------------------------------------------------------------


def fig8(evaluations: List[BenchmarkEvaluation]) -> List[tuple]:
    rows = [("Benchmark", "CA_P (MB)", "CA_S (MB)", "Saving (MB)")]
    for evaluation in evaluations:
        perf_mb = evaluation.perf_mapping.cache_megabytes()
        space_mb = evaluation.space_mapping.cache_megabytes()
        rows.append((
            evaluation.benchmark.name, perf_mb, space_mb, perf_mb - space_mb
        ))
    perf_avg = sum(r[1] for r in rows[1:]) / len(evaluations)
    space_avg = sum(r[2] for r in rows[1:]) / len(evaluations)
    rows.append(("AVERAGE", perf_avg, space_avg, perf_avg - space_avg))
    return rows


# -- Figure 9: energy and power ---------------------------------------------------------------------


def fig9a(evaluations: List[BenchmarkEvaluation]) -> List[tuple]:
    ap = ApModel()
    rows = [(
        "Benchmark", "CA_P (nJ/sym)", "CA_S (nJ/sym)",
        "IdealAP w/CA_P (nJ/sym)", "IdealAP w/CA_S (nJ/sym)",
    )]
    for evaluation in evaluations:
        perf_energy = EnergyModel(CA_P).energy_per_symbol_nj(evaluation.perf_profile)
        space_energy = EnergyModel(CA_S).energy_per_symbol_nj(
            evaluation.space_profile
        )
        rows.append((
            evaluation.benchmark.name,
            perf_energy,
            space_energy,
            ap.ideal_energy_per_symbol_nj(evaluation.perf_profile),
            ap.ideal_energy_per_symbol_nj(evaluation.space_profile),
        ))
    averages = [
        sum(row[column] for row in rows[1:]) / len(evaluations)
        for column in range(1, 5)
    ]
    rows.append(("AVERAGE", *averages))
    return rows


def fig9b(evaluations: List[BenchmarkEvaluation]) -> List[tuple]:
    rows = [("Benchmark", "CA_P (W)", "CA_S (W)")]
    for evaluation in evaluations:
        rows.append((
            evaluation.benchmark.name,
            EnergyModel(CA_P).average_power_watts(evaluation.perf_profile),
            EnergyModel(CA_S).average_power_watts(evaluation.space_profile),
        ))
    return rows


# -- multi-stream scaling (Section 5.2's space->speedup conversion) --------------------


def multistream(
    evaluations: List[BenchmarkEvaluation],
    *,
    budget_ways: int = 8,
) -> List[tuple]:
    """Section 5.2: "space savings can be directly translated to speedup
    by matching against multiple NFA instances."

    Given the same *silicon* budget (default: the 8 NFA ways of one LLC
    slice), each design fits ``capacity // footprint`` independent copies
    of its automaton, each scanning a separate input stream at line rate.
    CA_S holds twice the partitions per way (whole sub-arrays vs Array_L
    halves) *and* maps a merged automaton, so its aggregate bandwidth can
    overtake CA_P's faster clock wherever merging shrinks the machine.
    """
    rows = [(
        "Benchmark", "CA_P streams", "CA_P agg (Gb/s)",
        "CA_S streams", "CA_S agg (Gb/s)", "CA_S/CA_P agg",
    )]
    for evaluation in evaluations:
        perf_capacity = budget_ways * CA_P.partitions_per_way
        space_capacity = budget_ways * CA_S.partitions_per_way
        perf_copies = max(
            1, perf_capacity // evaluation.perf_mapping.partition_count
        )
        space_copies = max(
            1, space_capacity // evaluation.space_mapping.partition_count
        )
        perf_aggregate = perf_copies * CA_P.throughput_gbps
        space_aggregate = space_copies * CA_S.throughput_gbps
        rows.append((
            evaluation.benchmark.name,
            perf_copies,
            perf_aggregate,
            space_copies,
            space_aggregate,
            space_aggregate / perf_aggregate,
        ))
    return rows


# -- Figure 10: reachability vs frequency/area design space -----------------------------------------------


def fig10() -> List[tuple]:
    ap = ApModel()
    rows = [("Design", "Reachability", "Freq (GHz)", "Area@32K (mm2)", "Max fan-in")]
    for design in (CA_64, CA_P, CA_S):
        rows.append((
            design.name,
            design.reachability,
            design.frequency_ghz,
            design.area_overhead_mm2(32 * 1024),
            design.max_fan_in,
        ))
    rows.append(("AP", ap.reachability, ap.frequency_ghz, ap.area_mm2(), ap.fan_in))
    return rows


# -- headline summary (Section 5.1 claims) ---------------------------------------------------------------------


def headline(evaluations: List[BenchmarkEvaluation]) -> List[tuple]:
    ap = ApModel()
    cpu = CpuReferenceModel()
    perf_mb = sum(e.perf_mapping.cache_megabytes() for e in evaluations)
    space_mb = sum(e.space_mapping.cache_megabytes() for e in evaluations)
    count = len(evaluations)
    space_energy = sum(
        EnergyModel(CA_S).energy_per_symbol_nj(e.space_profile) for e in evaluations
    )
    rows = [
        ("Metric", "Measured", "Paper"),
        ("CA_P speedup over AP", ap.speedup_of(CA_P), 15.0),
        ("CA_S speedup over AP", ap.speedup_of(CA_S), 9.0),
        ("CA_P speedup over CPU", cpu.speedup_of(CA_P), 3840.0),
        ("Mean CA_P utilisation (MB)*", perf_mb / count, 1.2),
        ("Mean CA_S utilisation (MB)*", space_mb / count, 0.725),
        ("Mean CA_S energy (nJ/symbol)*", space_energy / count, 2.3),
    ]
    return rows


#: Registry: experiment id -> zero-argument runner returning table rows.
def registry(
    evaluations_supplier: Callable[[], List[BenchmarkEvaluation]],
) -> Dict[str, Callable[[], List[tuple]]]:
    return {
        "table1": lambda: table1(evaluations_supplier()),
        "table2": table2,
        "table3": table3,
        "table4": table4,
        "table5": table5,
        "fig7": lambda: fig7(evaluations_supplier()),
        "fig8": lambda: fig8(evaluations_supplier()),
        "fig9a": lambda: fig9a(evaluations_supplier()),
        "fig9b": lambda: fig9b(evaluations_supplier()),
        "fig10": fig10,
        "multistream": lambda: multistream(evaluations_supplier()),
        "headline": lambda: headline(evaluations_supplier()),
    }
