"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from typing import List, Sequence


def format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(rows: Sequence[Sequence], *, header: bool = True) -> str:
    """Align ``rows`` into a monospace table; first row is the header."""
    rendered: List[List[str]] = [[format_cell(cell) for cell in row] for row in rows]
    if not rendered:
        return ""
    widths = [
        max(len(row[column]) for row in rendered if column < len(row))
        for column in range(max(len(row) for row in rendered))
    ]
    lines = []
    for index, row in enumerate(rendered):
        line = "  ".join(
            cell.ljust(widths[column]) if column == 0 else cell.rjust(widths[column])
            for column, cell in enumerate(row)
        )
        lines.append(line.rstrip())
        if header and index == 0:
            lines.append("-" * len(lines[0]))
    return "\n".join(lines)
