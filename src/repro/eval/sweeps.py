"""Design-space sweeps: the generalisation of Figure 10.

The paper evaluates three Cache Automaton points and the AP; the model
behind them is parametric, so these sweeps walk one knob at a time and
report how reachability, frequency, and area move — the design-space
exploration a follow-on architect would run.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Sequence

from repro.core.design import CA_P, CA_S, DesignPoint
from repro.errors import HardwareModelError


def _row(design: DesignPoint) -> tuple:
    return (
        design.name,
        design.reachability,
        design.max_frequency_ghz,
        design.max_frequency_ghz * 8.0,
        design.area_overhead_mm2(32 * 1024),
    )


_HEADER = (
    "Design", "Reachability", "Max freq (GHz)", "Line rate (Gb/s)",
    "Area@32K (mm2)",
)


def sweep_g1_wires(
    base: DesignPoint = CA_P,
    wire_counts: Sequence[int] = (0, 4, 8, 16, 32, 64),
) -> List[tuple]:
    """Vary the within-way global wire budget per partition.

    More wires buy reachability (each extra wire lets another source STE
    cross partitions) at the price of bigger, slower G-switches.
    """
    rows = [_HEADER]
    for wires in wire_counts:
        point = replace(
            base,
            name=f"{base.name}/g1={wires}",
            g1_wires_per_partition=wires,
            operating_frequency_ghz=1000.0,
        )
        rows.append(_row(point))
    return rows


def sweep_g4_wires(
    base: DesignPoint = CA_S,
    wire_counts: Sequence[int] = (0, 4, 8, 16),
) -> List[tuple]:
    """Vary the cross-way wire budget (the CA_S-only switch layer)."""
    rows = [_HEADER]
    for wires in wire_counts:
        point = replace(
            base,
            name=f"{base.name}/g4={wires}",
            g4_wires_per_partition=wires,
            operating_frequency_ghz=1000.0,
        )
        rows.append(_row(point))
    return rows


def sweep_partition_size(
    base: DesignPoint = CA_P,
    sizes: Sequence[int] = (64, 128, 256),
) -> List[tuple]:
    """Vary the partition (L-switch) size.

    Smaller partitions read out faster (fewer column-multiplexed sense
    phases) but reach fewer states — the axis between the paper's 4 GHz
    corner and CA_P.
    """
    rows = [_HEADER]
    for size in sizes:
        if size > 256 or size < 1:
            raise HardwareModelError(f"partition size {size} outside 1..256")
        point = replace(
            base,
            name=f"{base.name}/p={size}",
            partition_size=size,
            # Small partitions cannot afford per-partition global wires at
            # the same budget; scale them proportionally.
            g1_wires_per_partition=max(
                0, base.g1_wires_per_partition * size // base.partition_size
            ),
            operating_frequency_ghz=1000.0,
        )
        rows.append(_row(point))
    return rows


def sweep_ways(
    base: DesignPoint = CA_P,
    way_counts: Sequence[int] = (2, 4, 8, 16),
) -> List[tuple]:
    """Vary how many LLC ways the NFA occupies (capacity vs cache left).

    Frequency and reachability barely move (the interconnect is per-way);
    capacity and the cache share surrendered to automata scale linearly.
    """
    rows = [(
        "Design", "NFA ways", "States/slice", "Data capacity left",
        "Max freq (GHz)",
    )]
    from repro.core.system import WayAllocation

    for ways in way_counts:
        point = replace(
            base, name=f"{base.name}/w={ways}", ways_used=ways,
        )
        allocation = WayAllocation(point, ways)
        rows.append((
            point.name,
            ways,
            point.states_per_slice,
            f"{allocation.data_capacity_fraction:.0%}",
            point.max_frequency_ghz,
        ))
    return rows
