"""Command-line experiment runner.

Usage::

    python -m repro.eval.runner                 # every table and figure
    python -m repro.eval.runner table3 fig10    # specific experiments
    python -m repro.eval.runner --input-length 50000 fig9a

One suite evaluation (compile + simulate all 20 benchmarks) is shared
across all requested experiments.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.eval.experiments import (
    BenchmarkEvaluation,
    DEFAULT_INPUT_LENGTH,
    evaluate_suite,
    registry,
)
from repro.eval.tables import format_table

_TITLES = {
    "table1": "Table 1: benchmark characteristics",
    "table2": "Table 2: switch parameters",
    "table3": "Table 3: pipeline stage delays and operating frequency",
    "table4": "Table 4: impact of optimisations and parameters",
    "table5": "Table 5: comparison with related ASIC designs (Dotstar0.9)",
    "fig7": "Figure 7: throughput vs Micron's AP (Gb/s)",
    "fig8": "Figure 8: cache utilisation (MB)",
    "fig9a": "Figure 9a: energy per input symbol",
    "fig9b": "Figure 9b: average power",
    "fig10": "Figure 10: reachability vs frequency and area",
    "multistream": "Multi-stream scaling (Section 5.2: space -> speedup)",
    "headline": "Section 5.1 headline claims",
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "experiments", nargs="*", default=[],
        help=f"experiment ids (default: all of {', '.join(_TITLES)})",
    )
    parser.add_argument(
        "--input-length", type=int, default=DEFAULT_INPUT_LENGTH,
        help="input stream length per benchmark (symbols)",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="benchmark-suite size multiplier (1.0 = fast default)",
    )
    arguments = parser.parse_args(argv)

    cache: List[BenchmarkEvaluation] = []

    def evaluations() -> List[BenchmarkEvaluation]:
        if not cache:
            print(
                f"(evaluating the 20-benchmark suite over "
                f"{arguments.input_length}-symbol streams...)",
                file=sys.stderr,
            )
            cache.extend(
                evaluate_suite(
                    input_length=arguments.input_length,
                    seed=arguments.seed,
                    scale=arguments.scale,
                )
            )
        return cache

    experiments = registry(evaluations)
    wanted = arguments.experiments or list(_TITLES)
    unknown = [name for name in wanted if name not in experiments]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")
    for name in wanted:
        print(f"\n== {_TITLES[name]} ==")
        print(format_table(experiments[name]()))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
