"""Evaluation harness: per-table/figure experiment runners."""

from repro.eval.experiments import (
    BenchmarkEvaluation,
    multistream,
    evaluate_benchmark,
    evaluate_suite,
    fig7,
    fig8,
    fig9a,
    fig9b,
    fig10,
    headline,
    registry,
    table1,
    table2,
    table3,
    table4,
    table5,
)
from repro.eval.faults import CampaignResult, CampaignRow, run_campaign
from repro.eval.profiling import (
    energy_breakdown,
    partition_activity,
    profile_mapping,
    utilisation_report,
    way_load,
)
from repro.eval.tables import format_table

__all__ = [
    "BenchmarkEvaluation",
    "CampaignResult",
    "CampaignRow",
    "run_campaign",
    "evaluate_benchmark",
    "evaluate_suite",
    "fig10",
    "fig7",
    "fig8",
    "fig9a",
    "fig9b",
    "energy_breakdown",
    "format_table",
    "partition_activity",
    "profile_mapping",
    "utilisation_report",
    "way_load",
    "headline",
    "multistream",
    "registry",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
]
