"""Mapping utilisation, activity, and compile-phase profiling reports.

Turns a compiled mapping plus a simulated run into the reports a system
operator would want: per-partition fill and activity (which arrays burn
power), per-way load, and the energy attribution between array accesses,
local switches, global switches, and wires.  :func:`profile_compile`
additionally times the compiler itself, phase by phase (validate /
components / pack / split / place / check / bitstream, with the split
phase further attributed to coarsening and FM refinement), so compile-
time optimisation work has a measured breakdown to aim at.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.automata.anml import HomogeneousAutomaton
from repro.compiler.bitstream import generate
from repro.compiler.constraints import check
from repro.compiler.mapping import Compiler, Mapping
from repro.core.design import DesignPoint
from repro.core.energy import ActivityProfile, EnergyModel
from repro.errors import SimulationError
from repro.sim.functional import MappedRunResult, MappedSimulator


@dataclass(frozen=True)
class PartitionActivity:
    """One partition's occupancy and dynamic activity."""

    index: int
    way: int
    occupancy: int
    capacity: int
    activation_cycles: int
    total_cycles: int

    @property
    def fill_fraction(self) -> float:
        return self.occupancy / self.capacity if self.capacity else 0.0

    @property
    def duty_cycle(self) -> float:
        """Fraction of cycles this partition's array was accessed."""
        if self.total_cycles == 0:
            return 0.0
        return self.activation_cycles / self.total_cycles


@dataclass(frozen=True)
class EnergyBreakdown:
    """Where the per-symbol energy goes (array / L / G / wires), in pJ."""

    array_pj: float
    l_switch_pj: float
    g_switch_pj: float
    wire_pj: float

    @property
    def total_pj(self) -> float:
        return self.array_pj + self.l_switch_pj + self.g_switch_pj + self.wire_pj

    def rows(self) -> List[tuple]:
        total = self.total_pj or 1.0
        return [
            ("Component", "pJ/symbol", "Share"),
            ("SRAM array reads", self.array_pj, f"{self.array_pj/total:.0%}"),
            ("L-switches", self.l_switch_pj, f"{self.l_switch_pj/total:.0%}"),
            ("G-switches", self.g_switch_pj, f"{self.g_switch_pj/total:.0%}"),
            ("global wires", self.wire_pj, f"{self.wire_pj/total:.0%}"),
        ]


def profile_mapping(
    mapping: Mapping, data: bytes, *, simulator: Optional[MappedSimulator] = None
) -> MappedRunResult:
    """Run the mapped simulation with per-partition stats enabled."""
    simulator = simulator or MappedSimulator(mapping)
    return simulator.run(data, collect_reports=False, collect_partition_stats=True)


def partition_activity(
    mapping: Mapping, result: MappedRunResult
) -> List[PartitionActivity]:
    """Per-partition fill + duty-cycle table from a profiled run."""
    if result.partition_activation_counts is None:
        raise SimulationError(
            "run was not profiled; use profile_mapping() or pass "
            "collect_partition_stats=True"
        )
    counts = result.partition_activation_counts
    return [
        PartitionActivity(
            index=partition.index,
            way=partition.way,
            occupancy=partition.occupancy,
            capacity=mapping.design.partition_size,
            activation_cycles=int(counts[partition.index]),
            total_cycles=result.profile.symbols,
        )
        for partition in mapping.partitions
    ]


def way_load(activities: List[PartitionActivity]) -> List[tuple]:
    """Aggregate duty cycle per way (where does the power concentrate)."""
    ways = sorted({activity.way for activity in activities})
    rows = [("Way", "Partitions", "Mean duty cycle", "Max duty cycle")]
    for way in ways:
        members = [a for a in activities if a.way == way]
        duties = [a.duty_cycle for a in members]
        rows.append((
            way, len(members), sum(duties) / len(duties), max(duties)
        ))
    return rows


def energy_breakdown(
    mapping: Mapping, profile: ActivityProfile
) -> EnergyBreakdown:
    """Attribute the measured per-symbol energy to hardware components."""
    if profile.symbols == 0:
        raise SimulationError("profile covers no symbols")
    model = EnergyModel(mapping.design)
    symbols = profile.symbols
    array_pj = profile.partition_activations * model.sram.access_energy_pj / symbols
    l_switch_pj = (
        profile.partition_activations
        * mapping.design.l_switch.access_energy_pj
        / symbols
    )
    g_switch_pj = (
        profile.g1_switch_activations * model.g1_event_pj
        + profile.g4_switch_activations * model.g4_event_pj
    ) / symbols
    wire_pj = (
        profile.g1_crossings * model.g1_wire_pj_per_crossing
        + profile.g4_crossings * model.g4_wire_pj_per_crossing
    ) / symbols
    return EnergyBreakdown(array_pj, l_switch_pj, g_switch_pj, wire_pj)


def hottest_partitions(
    activities: List[PartitionActivity], count: int = 5
) -> List[PartitionActivity]:
    """The partitions with the highest duty cycles (power hot spots)."""
    return sorted(activities, key=lambda a: a.duty_cycle, reverse=True)[:count]


def utilisation_report(
    mapping: Mapping, result: MappedRunResult
) -> List[tuple]:
    """A per-partition table: fill, duty cycle, way."""
    rows = [("Partition", "Way", "STEs", "Fill", "Duty cycle")]
    for activity in partition_activity(mapping, result):
        rows.append((
            activity.index,
            activity.way,
            activity.occupancy,
            f"{activity.fill_fraction:.0%}",
            f"{activity.duty_cycle:.1%}",
        ))
    return rows


# -- compile-phase profiling --------------------------------------------------

#: Phase display order for :meth:`CompileProfile.rows`.
_PHASE_ORDER = (
    "validate",
    "components",
    "pack",
    "split",
    "split:coarsen",
    "split:refine",
    "place",
    "check",
    "bitstream",
)


@dataclass(frozen=True)
class CompileProfile:
    """Wall-clock attribution of one cold compile, in milliseconds.

    ``phases`` maps phase name to milliseconds.  The ``split:coarsen``
    and ``split:refine`` entries are *components of* ``split`` (graph
    coarsening and FM refinement inside the k-way bisector), not
    additional time; the bisection bookkeeping between them is
    ``split`` minus their sum.
    """

    phases: Dict[str, float]
    states: int
    partitions: int

    @property
    def total_ms(self) -> float:
        return sum(
            duration
            for name, duration in self.phases.items()
            if not name.startswith("split:")
        )

    def rows(self) -> List[tuple]:
        """A printable table, slowest-first ordering preserved by phase."""
        rows = [("Phase", "ms", "Share")]
        total = self.total_ms or 1.0
        for name in _PHASE_ORDER:
            if name not in self.phases:
                continue
            duration = self.phases[name]
            share = "" if name.startswith("split:") else f"{duration/total:.0%}"
            label = "  " + name if name.startswith("split:") else name
            rows.append((label, round(duration, 3), share))
        rows.append(("total", round(self.total_ms, 3), "100%"))
        return rows


def profile_compile(
    automaton: HomogeneousAutomaton,
    design: DesignPoint,
    *,
    include_bitstream: bool = True,
) -> Tuple[CompileProfile, Mapping]:
    """Compile ``automaton`` cold and attribute the wall-clock per phase.

    Runs the compiler single-process (``jobs=1``) so the coarsen/refine
    sub-phase timers — installed by temporarily wrapping the k-way
    bisector's references — observe every split instead of only the ones
    that stay in the parent process.  Returns the profile and the
    resulting mapping (already constraint-checked).
    """
    from repro.partitioning import kway

    clock = time.perf_counter
    sub_totals = {"coarsen": 0.0, "refine": 0.0}

    def _timed(name, func):
        def wrapper(*args, **kwargs):
            started = clock()
            try:
                return func(*args, **kwargs)
            finally:
                sub_totals[name] += clock() - started

        return wrapper

    original_coarsen = kway.coarsen
    original_refine = kway.refine_bisection
    kway.coarsen = _timed("coarsen", original_coarsen)
    kway.refine_bisection = _timed("refine", original_refine)
    try:
        compiler = Compiler(design, jobs=1)
        mapping = compiler.compile(automaton)
    finally:
        kway.coarsen = original_coarsen
        kway.refine_bisection = original_refine

    phases = {
        name: duration * 1e3
        for name, duration in compiler.last_phase_timings.items()
    }
    phases["split:coarsen"] = sub_totals["coarsen"] * 1e3
    phases["split:refine"] = sub_totals["refine"] * 1e3

    started = clock()
    check(mapping)
    phases["check"] = (clock() - started) * 1e3

    if include_bitstream:
        started = clock()
        generate(mapping)
        phases["bitstream"] = (clock() - started) * 1e3

    return (
        CompileProfile(
            phases=phases,
            states=len(automaton),
            partitions=mapping.partition_count,
        ),
        mapping,
    )
