"""Open-loop load generation + observability for the scan service.

Drives a :class:`~repro.service.service.ScanService` with concurrent
clients arriving on a fixed open-loop schedule (arrivals do not wait
for completions — queueing delay is *measured*, not hidden), optionally
injecting faults mid-run:

* **worker kill** — one service worker task is cancelled mid-flight;
  its request fails retryably and the supervisor restarts the slot;
* **slow tenant** — one tenant's chunks are artificially delayed so its
  requests burn their deadlines, demonstrating per-tenant isolation
  (round-robin dequeue keeps the other tenants' latency bounded);
* **oversized stream** — periodic requests exceed the tenant's
  ``max_stream_bytes`` and are rejected with a typed error;
* **backend faults** — injected primary-scan errors trip the tenant's
  circuit breaker open (golden-fallback tier serves) and the
  cooldown-gated probe recovers it within the run.

Each run produces one :class:`RunRecord` — a flat row in the style of a
benchmark run table (throughput_rps, avg/p50/p95/p99 latency — global
*and* per tenant — failure/shed/timeout/retry counters, breaker and
worker events) — which ``benchmarks/bench_service.py`` appends to
``BENCH_service.json`` so every later performance PR has a
latency-percentile and failure-rate scoreboard, not just throughput.

The execution plane and transport are configurable so the same
open-loop schedule can compare serving modes like-for-like:

* ``scan_workers=N`` runs the service with the process-pool scan
  executor (:mod:`repro.service.procpool`; 0 = in-loop);
* ``transport="tcp"`` drives the requests through a real socket — a
  local :class:`~repro.service.net.ScanServer` is started on
  ``127.0.0.1`` and every request crosses the framed wire protocol via
  :class:`~repro.service.net.NetScanClient`;
* ``connect=(host, port)`` targets an *external* already-running
  ``repro serve`` instead (tenants are registered over the wire;
  fault injection requires a local service and is rejected).
"""

from __future__ import annotations

import asyncio
import math
import random
import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError, SimulationError
from repro.service import (
    ConnectionLost,
    DeadlineExceeded,
    NetScanClient,
    Overloaded,
    RetryingClient,
    ScanServer,
    ScanService,
    ServiceError,
    StreamTooLarge,
    TenantLimits,
    WorkerCrashed,
)
from repro.workloads.inputs import LOWERCASE, random_over_alphabet

#: Run-row schema generation: bumped when the run table gains required
#: columns (2 = scan_workers/transport/pool_respawns + per-tenant
#: latency percentiles); ``benchmarks/check_service_schema.py`` keys
#: its required-column set off this.
RUN_SCHEMA_VERSION = 2


@dataclass(frozen=True)
class TenantProfile:
    """One tenant's traffic shape for a loadgen run."""

    name: str
    patterns: Tuple[str, ...] = ("cat", "dog+", "ba[rt]")
    rate_rps: float = 25.0
    stream_bytes: int = 2048
    deadline_s: Optional[float] = 0.5
    max_stream_bytes: int = 1 << 16
    max_in_flight: int = 4
    dfa_max_states: Optional[int] = 512
    backend: str = "lazy-dfa"

    def limits(self) -> TenantLimits:
        return TenantLimits(
            max_stream_bytes=self.max_stream_bytes,
            max_in_flight=self.max_in_flight,
            dfa_max_states=self.dfa_max_states,
        )


@dataclass(frozen=True)
class FaultPlan:
    """What to break, and when (seconds into the run)."""

    worker_kill_at: Optional[float] = None
    oversized_every: int = 0
    oversized_tenant: Optional[str] = None
    slow_tenant: Optional[str] = None
    slow_delay_s: float = 0.02
    flaky_tenant: Optional[str] = None
    flaky_faults: int = 0
    flaky_at: float = 0.0

    def active(self) -> List[str]:
        kinds = []
        if self.worker_kill_at is not None:
            kinds.append("worker-kill")
        if self.oversized_every:
            kinds.append("oversized-stream")
        if self.slow_tenant:
            kinds.append("slow-tenant")
        if self.flaky_faults:
            kinds.append("backend-error")
        return kinds


@dataclass(frozen=True)
class LoadgenConfig:
    """One loadgen run: service shape, tenant mix, fault plan."""

    tenants: Tuple[TenantProfile, ...]
    duration_s: float = 2.0
    workers: int = 2
    #: Scan worker *processes* (0 = in-loop coroutine scanning).
    scan_workers: int = 0
    #: "inproc" calls the service object directly; "tcp" drives every
    #: request through the framed socket protocol.
    transport: str = "inproc"
    #: (host, port) of an external ``repro serve`` (tcp only); ``None``
    #: starts a loopback server in-process.
    connect: Optional[Tuple[str, int]] = None
    max_queue: int = 32
    chunk_bytes: int = 1024
    breaker_threshold: int = 2
    breaker_cooldown: float = 0.3
    drain_timeout: float = 2.0
    seed: int = 7
    label: str = "loadgen"
    scenario: str = "baseline"
    faults: FaultPlan = field(default_factory=FaultPlan)
    cache: object = False


@dataclass
class RunRecord:
    """One row of the service run table (``BENCH_service.json``)."""

    run_id: str
    label: str
    scenario: str
    seed: int
    duration_s: float
    workers: int
    scan_workers: int
    transport: str
    max_queue: int
    chunk_bytes: int
    tenants: int
    faults: List[str]
    schema_version: int
    requests_sent: int
    completed: int
    failed: int
    shed: int
    timeouts: int
    oversized: int
    retried: int
    retry_exhausted: int
    unhandled_exceptions: int
    throughput_rps: float
    latency_avg_ms: Optional[float]
    latency_p50_ms: Optional[float]
    latency_p95_ms: Optional[float]
    latency_p99_ms: Optional[float]
    failure_rate: float
    fallback_scans: int
    breaker_trips: int
    breaker_recoveries: int
    breaker_recovered: bool
    worker_restarts: int
    pool_respawns: int
    degrade_events: int
    events_dropped: int
    #: Per-tenant counters + breaker state + latency percentiles
    #: (latency_p50_ms/p95_ms/p99_ms from that tenant's own samples).
    per_tenant: Dict[str, Dict[str, object]]

    def as_dict(self) -> Dict[str, object]:
        return dict(self.__dict__)


def percentile(samples: Sequence[float], q: float) -> Optional[float]:
    """Nearest-rank percentile (q in [0, 100]); ``None`` on no samples."""
    if not samples:
        return None
    ordered = sorted(samples)
    rank = max(0, math.ceil(q / 100.0 * len(ordered)) - 1)
    return ordered[min(rank, len(ordered) - 1)]


def _tenant_stream(profile: TenantProfile, seed: int) -> bytes:
    """Deterministic input with planted pattern literals, so scans do
    real match work instead of idling through random bytes."""
    data = bytearray(
        random_over_alphabet(profile.stream_bytes, LOWERCASE, seed=seed)
    )
    rng = random.Random(seed ^ 0x5EED)
    literals = [
        pattern.encode("ascii")
        for pattern in profile.patterns
        if pattern.isalnum()
    ] or [b"cat"]
    step = max(16, profile.stream_bytes // 32)
    for position in range(0, max(1, len(data) - 8), step):
        literal = literals[rng.randrange(len(literals))]
        data[position : position + len(literal)] = literal
    return bytes(data)


#: Global run-table counters taken as before/after snapshot deltas, so
#: driving an external long-lived server attributes only *this run's*
#: activity to the row.
_DELTA_KEYS = (
    "shed",
    "fallback_scans",
    "breaker_trips",
    "breaker_recoveries",
    "worker_restarts",
    "pool_respawns",
)

#: Per-tenant counters delta'd the same way (gauges — ``in_flight``,
#: ``breaker`` — are taken from the final snapshot).
_TENANT_DELTA_KEYS = (
    "submitted",
    "completed",
    "failed",
    "shed",
    "oversized",
    "timeouts",
    "fallback_scans",
    "breaker_trips",
    "breaker_recoveries",
)


def _validate_transport(config: LoadgenConfig) -> None:
    if config.transport not in ("inproc", "tcp"):
        raise ReproError(
            f"unknown loadgen transport {config.transport!r} "
            "(expected 'inproc' or 'tcp')"
        )
    if config.connect is not None:
        if config.transport != "tcp":
            raise ReproError("connect= requires transport='tcp'")
        if config.faults.active():
            raise ReproError(
                "fault injection needs a local service; it cannot drive "
                "an external server (drop connect= or the fault plan)"
            )


async def _drive(config: LoadgenConfig) -> RunRecord:
    _validate_transport(config)
    external = config.connect is not None
    service: Optional[ScanService] = None
    server: Optional[ScanServer] = None
    net: Optional[NetScanClient] = None
    if not external:
        service = ScanService(
            workers=config.workers,
            scan_workers=config.scan_workers,
            max_queue=config.max_queue,
            chunk_bytes=config.chunk_bytes,
            breaker_threshold=config.breaker_threshold,
            breaker_cooldown=config.breaker_cooldown,
            cache=config.cache,
        )
        for profile in config.tenants:
            service.register(
                profile.name,
                list(profile.patterns),
                limits=profile.limits(),
                backend=profile.backend,
            )
        await service.start()

    try:
        if config.transport == "tcp":
            if external:
                host, port = config.connect
            else:
                server = ScanServer(service)
                await server.start()
                host, port = server.address
            net = await NetScanClient.connect(host, port, timeout=10.0)
            if external:
                # The remote service never saw these tenants: register
                # over the wire (idempotent for unchanged fingerprints).
                for profile in config.tenants:
                    await net.register(
                        profile.name,
                        list(profile.patterns),
                        limits=profile.limits(),
                        backend=profile.backend,
                    )
            scan_target = net
        else:
            scan_target = service

        async def snapshot_now() -> Dict[str, object]:
            if external:
                return await net.health()
            return service.metrics_snapshot()

        before = await snapshot_now()
        client = RetryingClient(
            scan_target,
            max_attempts=4,
            base_delay=0.01,
            max_delay=0.1,
            rng=random.Random(config.seed),
        )
        streams = {
            profile.name: _tenant_stream(profile, config.seed)
            for profile in config.tenants
        }
        faults = config.faults
        latencies: List[float] = []
        tenant_latencies: Dict[str, List[float]] = {
            profile.name: [] for profile in config.tenants
        }
        counters = {
            "sent": 0,
            "completed": 0,
            "failed": 0,
            "timeouts": 0,
            "oversized": 0,
            "shed_abandoned": 0,
            "unhandled": 0,
        }

        loop = asyncio.get_running_loop()
        epoch = loop.time()

        async def one_request(profile: TenantProfile, index: int, at: float):
            counters["sent"] += 1
            data = streams[profile.name]
            if (
                faults.oversized_every
                and profile.name == (faults.oversized_tenant or profile.name)
                and index % faults.oversized_every == faults.oversized_every - 1
            ):
                data = b"\x00" * (profile.max_stream_bytes + 1)
            try:
                await client.scan(
                    profile.name, data, deadline=profile.deadline_s
                )
                counters["completed"] += 1
                latency = loop.time() - (epoch + at)
                latencies.append(latency)
                tenant_latencies[profile.name].append(latency)
            except DeadlineExceeded:
                counters["timeouts"] += 1
            except StreamTooLarge:
                counters["oversized"] += 1
            except (Overloaded, WorkerCrashed, ConnectionLost):
                # Retry budget exhausted: the request is abandoned, which
                # is the open-loop client's last resort under shed load.
                counters["shed_abandoned"] += 1
            except ServiceError:
                counters["failed"] += 1
            except ReproError:
                counters["failed"] += 1
            except Exception:  # noqa: BLE001 - the run table must see these
                counters["unhandled"] += 1

        # Open-loop arrival schedule: every tenant's arrivals merged in
        # time order, independent of completions.
        schedule: List[Tuple[float, TenantProfile, int]] = []
        for profile in config.tenants:
            count = max(1, int(profile.rate_rps * config.duration_s))
            for index in range(count):
                schedule.append((index / profile.rate_rps, profile, index))
        schedule.sort(key=lambda item: item[0])

        breaker_saw_open = False
        if faults.slow_tenant:
            service.set_scan_delay(faults.slow_tenant, faults.slow_delay_s)
        flaky_pending = faults.flaky_faults
        kill_pending = faults.worker_kill_at is not None
        tasks: List[asyncio.Task] = []
        for at, profile, index in schedule:
            now = loop.time() - epoch
            if at > now:
                await asyncio.sleep(at - now)
                now = at
            if (
                flaky_pending
                and faults.flaky_tenant
                and now >= faults.flaky_at
            ):
                service.inject_scan_faults(
                    faults.flaky_tenant,
                    flaky_pending,
                    SimulationError("loadgen: injected backend fault"),
                )
                flaky_pending = 0
            if kill_pending and now >= faults.worker_kill_at:
                service.crash_worker(0)
                kill_pending = False
            tasks.append(
                asyncio.ensure_future(one_request(profile, index, at))
            )
            if (
                service is not None
                and not breaker_saw_open
                and any(
                    service.breaker_state(name) == "open"
                    for name in service.tenant_names()
                )
            ):
                breaker_saw_open = True
        if kill_pending:
            service.crash_worker(0)
        if service is not None:
            for name in service.tenant_names():
                if service.breaker_state(name) == "open":
                    breaker_saw_open = True
        await asyncio.gather(*tasks)

        after = await snapshot_now()
        if service is not None:
            recovered = breaker_saw_open and all(
                service.breaker_state(name) != "open"
                for name in service.tenant_names()
            )
        else:
            recovered = False
    finally:
        if net is not None:
            await net.close()
        if server is not None:
            await server.stop()
        if service is not None:
            await service.stop(drain_timeout=config.drain_timeout)

    wall = max(config.duration_s, 1e-9)
    completed = counters["completed"]
    sent = counters["sent"]
    latencies_ms = [value * 1e3 for value in latencies]

    def delta(key: str) -> int:
        return int(after.get(key, 0)) - int(before.get(key, 0))

    tenants_before = before.get("tenants", {})
    per_tenant: Dict[str, Dict[str, object]] = {}
    for name, row in after.get("tenants", {}).items():
        row_before = tenants_before.get(name, {})
        merged: Dict[str, object] = {
            key: int(row.get(key, 0)) - int(row_before.get(key, 0))
            for key in _TENANT_DELTA_KEYS
        }
        merged["in_flight"] = row.get("in_flight", 0)
        merged["breaker"] = row.get("breaker", "closed")
        samples_ms = [
            value * 1e3 for value in tenant_latencies.get(name, ())
        ]
        merged["latency_p50_ms"] = percentile(samples_ms, 50)
        merged["latency_p95_ms"] = percentile(samples_ms, 95)
        merged["latency_p99_ms"] = percentile(samples_ms, 99)
        per_tenant[name] = merged

    return RunRecord(
        run_id=f"{config.label}-{config.scenario}-s{config.seed}",
        label=config.label,
        scenario=config.scenario,
        seed=config.seed,
        duration_s=config.duration_s,
        workers=config.workers,
        scan_workers=(
            int(after.get("scan_workers", 0))
            if external
            else config.scan_workers
        ),
        transport=config.transport,
        max_queue=config.max_queue,
        chunk_bytes=config.chunk_bytes,
        tenants=len(config.tenants),
        faults=config.faults.active(),
        schema_version=RUN_SCHEMA_VERSION,
        requests_sent=sent,
        completed=completed,
        failed=counters["failed"] + counters["shed_abandoned"],
        shed=delta("shed"),
        timeouts=counters["timeouts"],
        oversized=counters["oversized"],
        retried=client.retries,
        retry_exhausted=client.exhausted,
        unhandled_exceptions=counters["unhandled"],
        throughput_rps=completed / wall,
        latency_avg_ms=(
            statistics.fmean(latencies_ms) if latencies_ms else None
        ),
        latency_p50_ms=percentile(latencies_ms, 50),
        latency_p95_ms=percentile(latencies_ms, 95),
        latency_p99_ms=percentile(latencies_ms, 99),
        failure_rate=1.0 - (completed / sent) if sent else 0.0,
        fallback_scans=delta("fallback_scans"),
        breaker_trips=delta("breaker_trips"),
        breaker_recoveries=delta("breaker_recoveries"),
        breaker_recovered=recovered,
        worker_restarts=delta("worker_restarts"),
        pool_respawns=delta("pool_respawns"),
        degrade_events=(
            len(after.get("events", ())) + int(after.get("events_dropped", 0))
        ),
        events_dropped=int(after.get("events_dropped", 0)),
        per_tenant=per_tenant,
    )


def run_loadgen(config: LoadgenConfig) -> RunRecord:
    """Run one loadgen scenario to completion and return its run row."""
    return asyncio.run(_drive(config))


# -- canned scenarios --------------------------------------------------------


def baseline_config(
    *,
    duration_s: float = 2.0,
    seed: int = 7,
    label: str = "loadgen",
) -> LoadgenConfig:
    """Two healthy tenants, no faults: the throughput/latency floor."""
    return LoadgenConfig(
        tenants=(
            TenantProfile(name="alpha", rate_rps=30.0),
            TenantProfile(
                name="beta",
                patterns=("error", "warn(ing)?", "cr[ia]tical"),
                rate_rps=20.0,
            ),
        ),
        duration_s=duration_s,
        seed=seed,
        label=label,
        scenario="baseline",
    )


def serving_config(
    *,
    scan_workers: int = 0,
    transport: str = "inproc",
    connect: Optional[Tuple[str, int]] = None,
    duration_s: float = 2.0,
    seed: int = 7,
    label: str = "loadgen",
) -> LoadgenConfig:
    """The serving-plane comparison scenario: identical open-loop load,
    parameterised over the execution plane (``scan_workers``) and the
    transport (``inproc`` vs ``tcp``), so ``bench_service.py`` can put
    in-loop, process-pool, and networked serving rows side by side.

    Streams are larger than the baseline scenario's (16 KiB, chunked at
    2 KiB) so each request does enough CPU work for the execution plane
    to matter; deadlines are generous enough that the comparison
    measures throughput, not timeout policy.
    """
    scenario = f"serve-{transport}-w{scan_workers}"
    if connect is not None:
        transport = "tcp"  # connecting out is necessarily networked
        scenario = f"serve-connect-w{scan_workers}"
    return LoadgenConfig(
        tenants=(
            TenantProfile(
                name="alpha",
                rate_rps=24.0,
                stream_bytes=16384,
                deadline_s=3.0,
                max_in_flight=8,
            ),
            TenantProfile(
                name="beta",
                patterns=("error", "warn(ing)?", "cr[ia]tical"),
                rate_rps=16.0,
                stream_bytes=16384,
                deadline_s=3.0,
                max_in_flight=8,
            ),
        ),
        duration_s=duration_s,
        workers=4,
        scan_workers=scan_workers,
        transport=transport,
        connect=connect,
        max_queue=64,
        chunk_bytes=2048,
        seed=seed,
        label=label,
        scenario=scenario,
    )


def faulted_config(
    *,
    duration_s: float = 2.5,
    seed: int = 7,
    label: str = "loadgen",
) -> LoadgenConfig:
    """The resilience gauntlet: worker kill + slow tenant + oversized
    streams + injected backend faults (breaker trip and recovery)."""
    return LoadgenConfig(
        tenants=(
            TenantProfile(name="hot", rate_rps=40.0),
            # max_in_flight=1 with inter-arrival (50 ms) far below the
            # delayed service time (>= 120 ms of injected chunk delay)
            # guarantees overlapping arrivals are shed -> retried, so
            # the run table's shed/retried columns are deterministic.
            TenantProfile(
                name="slow",
                patterns=("needle", "hay+stack"),
                rate_rps=20.0,
                deadline_s=0.08,
                max_in_flight=1,
                stream_bytes=4096,
            ),
            TenantProfile(
                name="flaky",
                patterns=("cat", "dog+"),
                rate_rps=25.0,
            ),
        ),
        duration_s=duration_s,
        seed=seed,
        label=label,
        scenario="fault-injected",
        faults=FaultPlan(
            worker_kill_at=duration_s * 0.4,
            oversized_every=5,
            oversized_tenant="hot",
            slow_tenant="slow",
            slow_delay_s=0.03,
            flaky_tenant="flaky",
            flaky_faults=2,
            flaky_at=duration_s * 0.15,
        ),
    )
