"""Open-loop load generation + observability for the scan service.

Drives a :class:`~repro.service.service.ScanService` with concurrent
clients arriving on a fixed open-loop schedule (arrivals do not wait
for completions — queueing delay is *measured*, not hidden), optionally
injecting faults mid-run:

* **worker kill** — one service worker task is cancelled mid-flight;
  its request fails retryably and the supervisor restarts the slot;
* **slow tenant** — one tenant's chunks are artificially delayed so its
  requests burn their deadlines, demonstrating per-tenant isolation
  (round-robin dequeue keeps the other tenants' latency bounded);
* **oversized stream** — periodic requests exceed the tenant's
  ``max_stream_bytes`` and are rejected with a typed error;
* **backend faults** — injected primary-scan errors trip the tenant's
  circuit breaker open (golden-fallback tier serves) and the
  cooldown-gated probe recovers it within the run.

Each run produces one :class:`RunRecord` — a flat row in the style of a
benchmark run table (throughput_rps, avg/p50/p95/p99 latency,
failure/shed/timeout/retry counters, breaker and worker events) — which
``benchmarks/bench_service.py`` appends to ``BENCH_service.json`` so
every later performance PR has a latency-percentile and failure-rate
scoreboard, not just throughput.
"""

from __future__ import annotations

import asyncio
import math
import random
import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError, SimulationError
from repro.service import (
    DeadlineExceeded,
    Overloaded,
    RetryingClient,
    ScanService,
    ServiceError,
    StreamTooLarge,
    TenantLimits,
    WorkerCrashed,
)
from repro.workloads.inputs import LOWERCASE, random_over_alphabet


@dataclass(frozen=True)
class TenantProfile:
    """One tenant's traffic shape for a loadgen run."""

    name: str
    patterns: Tuple[str, ...] = ("cat", "dog+", "ba[rt]")
    rate_rps: float = 25.0
    stream_bytes: int = 2048
    deadline_s: Optional[float] = 0.5
    max_stream_bytes: int = 1 << 16
    max_in_flight: int = 4
    dfa_max_states: Optional[int] = 512
    backend: str = "lazy-dfa"

    def limits(self) -> TenantLimits:
        return TenantLimits(
            max_stream_bytes=self.max_stream_bytes,
            max_in_flight=self.max_in_flight,
            dfa_max_states=self.dfa_max_states,
        )


@dataclass(frozen=True)
class FaultPlan:
    """What to break, and when (seconds into the run)."""

    worker_kill_at: Optional[float] = None
    oversized_every: int = 0
    oversized_tenant: Optional[str] = None
    slow_tenant: Optional[str] = None
    slow_delay_s: float = 0.02
    flaky_tenant: Optional[str] = None
    flaky_faults: int = 0
    flaky_at: float = 0.0

    def active(self) -> List[str]:
        kinds = []
        if self.worker_kill_at is not None:
            kinds.append("worker-kill")
        if self.oversized_every:
            kinds.append("oversized-stream")
        if self.slow_tenant:
            kinds.append("slow-tenant")
        if self.flaky_faults:
            kinds.append("backend-error")
        return kinds


@dataclass(frozen=True)
class LoadgenConfig:
    """One loadgen run: service shape, tenant mix, fault plan."""

    tenants: Tuple[TenantProfile, ...]
    duration_s: float = 2.0
    workers: int = 2
    max_queue: int = 32
    chunk_bytes: int = 1024
    breaker_threshold: int = 2
    breaker_cooldown: float = 0.3
    drain_timeout: float = 2.0
    seed: int = 7
    label: str = "loadgen"
    scenario: str = "baseline"
    faults: FaultPlan = field(default_factory=FaultPlan)
    cache: object = False


@dataclass
class RunRecord:
    """One row of the service run table (``BENCH_service.json``)."""

    run_id: str
    label: str
    scenario: str
    seed: int
    duration_s: float
    workers: int
    max_queue: int
    chunk_bytes: int
    tenants: int
    faults: List[str]
    requests_sent: int
    completed: int
    failed: int
    shed: int
    timeouts: int
    oversized: int
    retried: int
    retry_exhausted: int
    unhandled_exceptions: int
    throughput_rps: float
    latency_avg_ms: Optional[float]
    latency_p50_ms: Optional[float]
    latency_p95_ms: Optional[float]
    latency_p99_ms: Optional[float]
    failure_rate: float
    fallback_scans: int
    breaker_trips: int
    breaker_recoveries: int
    breaker_recovered: bool
    worker_restarts: int
    degrade_events: int
    events_dropped: int
    per_tenant: Dict[str, Dict[str, object]]

    def as_dict(self) -> Dict[str, object]:
        return dict(self.__dict__)


def percentile(samples: Sequence[float], q: float) -> Optional[float]:
    """Nearest-rank percentile (q in [0, 100]); ``None`` on no samples."""
    if not samples:
        return None
    ordered = sorted(samples)
    rank = max(0, math.ceil(q / 100.0 * len(ordered)) - 1)
    return ordered[min(rank, len(ordered) - 1)]


def _tenant_stream(profile: TenantProfile, seed: int) -> bytes:
    """Deterministic input with planted pattern literals, so scans do
    real match work instead of idling through random bytes."""
    data = bytearray(
        random_over_alphabet(profile.stream_bytes, LOWERCASE, seed=seed)
    )
    rng = random.Random(seed ^ 0x5EED)
    literals = [
        pattern.encode("ascii")
        for pattern in profile.patterns
        if pattern.isalnum()
    ] or [b"cat"]
    step = max(16, profile.stream_bytes // 32)
    for position in range(0, max(1, len(data) - 8), step):
        literal = literals[rng.randrange(len(literals))]
        data[position : position + len(literal)] = literal
    return bytes(data)


async def _drive(config: LoadgenConfig) -> RunRecord:
    service = ScanService(
        workers=config.workers,
        max_queue=config.max_queue,
        chunk_bytes=config.chunk_bytes,
        breaker_threshold=config.breaker_threshold,
        breaker_cooldown=config.breaker_cooldown,
        cache=config.cache,
    )
    for profile in config.tenants:
        service.register(
            profile.name,
            list(profile.patterns),
            limits=profile.limits(),
            backend=profile.backend,
        )
    client = RetryingClient(
        service,
        max_attempts=4,
        base_delay=0.01,
        max_delay=0.1,
        rng=random.Random(config.seed),
    )
    streams = {
        profile.name: _tenant_stream(profile, config.seed)
        for profile in config.tenants
    }
    faults = config.faults
    latencies: List[float] = []
    counters = {
        "sent": 0,
        "completed": 0,
        "failed": 0,
        "timeouts": 0,
        "oversized": 0,
        "shed_abandoned": 0,
        "unhandled": 0,
    }

    loop = asyncio.get_running_loop()
    epoch = loop.time()

    async def one_request(profile: TenantProfile, index: int, at: float):
        counters["sent"] += 1
        data = streams[profile.name]
        if (
            faults.oversized_every
            and profile.name == (faults.oversized_tenant or profile.name)
            and index % faults.oversized_every == faults.oversized_every - 1
        ):
            data = b"\x00" * (profile.max_stream_bytes + 1)
        try:
            await client.scan(
                profile.name, data, deadline=profile.deadline_s
            )
            counters["completed"] += 1
            latencies.append(loop.time() - (epoch + at))
        except DeadlineExceeded:
            counters["timeouts"] += 1
        except StreamTooLarge:
            counters["oversized"] += 1
        except (Overloaded, WorkerCrashed):
            # Retry budget exhausted: the request is abandoned, which
            # is the open-loop client's last resort under shed load.
            counters["shed_abandoned"] += 1
        except ServiceError:
            counters["failed"] += 1
        except ReproError:
            counters["failed"] += 1
        except Exception:  # noqa: BLE001 - the run table must see these
            counters["unhandled"] += 1

    # Open-loop arrival schedule: every tenant's arrivals merged in time
    # order, independent of completions.
    schedule: List[Tuple[float, TenantProfile, int]] = []
    for profile in config.tenants:
        count = max(1, int(profile.rate_rps * config.duration_s))
        for index in range(count):
            schedule.append((index / profile.rate_rps, profile, index))
    schedule.sort(key=lambda item: item[0])

    breaker_saw_open = False
    async with service:
        if faults.slow_tenant:
            service.set_scan_delay(faults.slow_tenant, faults.slow_delay_s)
        flaky_pending = faults.flaky_faults
        kill_pending = faults.worker_kill_at is not None
        tasks: List[asyncio.Task] = []
        for at, profile, index in schedule:
            now = loop.time() - epoch
            if at > now:
                await asyncio.sleep(at - now)
                now = at
            if flaky_pending and faults.flaky_tenant and now >= faults.flaky_at:
                service.inject_scan_faults(
                    faults.flaky_tenant,
                    flaky_pending,
                    SimulationError("loadgen: injected backend fault"),
                )
                flaky_pending = 0
            if kill_pending and now >= faults.worker_kill_at:
                service.crash_worker(0)
                kill_pending = False
            tasks.append(
                asyncio.ensure_future(one_request(profile, index, at))
            )
            if not breaker_saw_open and any(
                service.breaker_state(name) == "open"
                for name in service.tenant_names()
            ):
                breaker_saw_open = True
        if kill_pending:
            service.crash_worker(0)
        for name in service.tenant_names():
            if service.breaker_state(name) == "open":
                breaker_saw_open = True
        await asyncio.gather(*tasks)
        await service.stop(drain_timeout=config.drain_timeout)

    metrics = service.metrics
    wall = max(config.duration_s, 1e-9)
    completed = counters["completed"]
    sent = counters["sent"]
    latencies_ms = [value * 1e3 for value in latencies]
    snapshot = service.metrics_snapshot()
    recovered = breaker_saw_open and all(
        service.breaker_state(name) != "open"
        for name in service.tenant_names()
    )
    return RunRecord(
        run_id=f"{config.label}-{config.scenario}-s{config.seed}",
        label=config.label,
        scenario=config.scenario,
        seed=config.seed,
        duration_s=config.duration_s,
        workers=config.workers,
        max_queue=config.max_queue,
        chunk_bytes=config.chunk_bytes,
        tenants=len(config.tenants),
        faults=faults.active(),
        requests_sent=sent,
        completed=completed,
        failed=counters["failed"] + counters["shed_abandoned"],
        shed=metrics.shed,
        timeouts=counters["timeouts"],
        oversized=counters["oversized"],
        retried=client.retries,
        retry_exhausted=client.exhausted,
        unhandled_exceptions=counters["unhandled"],
        throughput_rps=completed / wall,
        latency_avg_ms=(
            statistics.fmean(latencies_ms) if latencies_ms else None
        ),
        latency_p50_ms=percentile(latencies_ms, 50),
        latency_p95_ms=percentile(latencies_ms, 95),
        latency_p99_ms=percentile(latencies_ms, 99),
        failure_rate=1.0 - (completed / sent) if sent else 0.0,
        fallback_scans=metrics.fallback_scans,
        breaker_trips=metrics.breaker_trips,
        breaker_recoveries=metrics.breaker_recoveries,
        breaker_recovered=recovered,
        worker_restarts=metrics.worker_restarts,
        degrade_events=len(snapshot["events"]) + snapshot["events_dropped"],
        events_dropped=snapshot["events_dropped"],
        per_tenant=snapshot["tenants"],
    )


def run_loadgen(config: LoadgenConfig) -> RunRecord:
    """Run one loadgen scenario to completion and return its run row."""
    return asyncio.run(_drive(config))


# -- canned scenarios --------------------------------------------------------


def baseline_config(
    *,
    duration_s: float = 2.0,
    seed: int = 7,
    label: str = "loadgen",
) -> LoadgenConfig:
    """Two healthy tenants, no faults: the throughput/latency floor."""
    return LoadgenConfig(
        tenants=(
            TenantProfile(name="alpha", rate_rps=30.0),
            TenantProfile(
                name="beta",
                patterns=("error", "warn(ing)?", "cr[ia]tical"),
                rate_rps=20.0,
            ),
        ),
        duration_s=duration_s,
        seed=seed,
        label=label,
        scenario="baseline",
    )


def faulted_config(
    *,
    duration_s: float = 2.5,
    seed: int = 7,
    label: str = "loadgen",
) -> LoadgenConfig:
    """The resilience gauntlet: worker kill + slow tenant + oversized
    streams + injected backend faults (breaker trip and recovery)."""
    return LoadgenConfig(
        tenants=(
            TenantProfile(name="hot", rate_rps=40.0),
            # max_in_flight=1 with inter-arrival (50 ms) far below the
            # delayed service time (>= 120 ms of injected chunk delay)
            # guarantees overlapping arrivals are shed -> retried, so
            # the run table's shed/retried columns are deterministic.
            TenantProfile(
                name="slow",
                patterns=("needle", "hay+stack"),
                rate_rps=20.0,
                deadline_s=0.08,
                max_in_flight=1,
                stream_bytes=4096,
            ),
            TenantProfile(
                name="flaky",
                patterns=("cat", "dog+"),
                rate_rps=25.0,
            ),
        ),
        duration_s=duration_s,
        seed=seed,
        label=label,
        scenario="fault-injected",
        faults=FaultPlan(
            worker_kill_at=duration_s * 0.4,
            oversized_every=5,
            oversized_tenant="hot",
            slow_tenant="slow",
            slow_delay_s=0.03,
            flaky_tenant="flaky",
            flaky_faults=2,
            flaky_at=duration_s * 0.15,
        ),
    )
