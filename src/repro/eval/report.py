"""Generate a complete markdown results report.

``python -m repro.eval.report RESULTS.md`` evaluates the suite once and
writes every table and figure as a markdown document — the mechanised
version of EXPERIMENTS.md's measured columns, regenerable at any suite
scale or input length.
"""

from __future__ import annotations

import argparse
import json
import pathlib
from typing import List, Optional, Sequence

from repro.eval.experiments import (
    DEFAULT_INPUT_LENGTH,
    evaluate_suite,
    registry,
)
from repro.eval.runner import _TITLES
from repro.eval.tables import format_cell


def rows_to_markdown(rows: Sequence[Sequence]) -> str:
    """Render experiment rows as a GitHub-flavoured markdown table."""
    if not rows:
        return ""
    lines = []
    header = [format_cell(cell) for cell in rows[0]]
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "|".join("---" for _ in header) + "|")
    for row in rows[1:]:
        lines.append(
            "| " + " | ".join(format_cell(cell) for cell in row) + " |"
        )
    return "\n".join(lines)


def generate_report(
    *,
    input_length: int = DEFAULT_INPUT_LENGTH,
    seed: int = 1,
    scale: float = 1.0,
    experiments: Optional[List[str]] = None,
) -> str:
    """Build the full markdown report as a string."""
    cache: List = []

    def evaluations():
        if not cache:
            cache.extend(
                evaluate_suite(
                    input_length=input_length, seed=seed, scale=scale
                )
            )
        return cache

    runners = registry(evaluations)
    wanted = experiments or list(_TITLES)
    sections = [
        "# Cache Automaton — measured results",
        "",
        f"Configuration: suite scale {scale}, {input_length}-symbol streams, "
        f"seed {seed}.",
        "",
    ]
    for name in wanted:
        sections.append(f"## {_TITLES[name]}")
        sections.append("")
        sections.append(rows_to_markdown(runners[name]()))
        sections.append("")
    throughput = simulator_throughput_section()
    if throughput:
        sections.append(throughput)
        sections.append("")
    compile_times = compiler_trajectory_section()
    if compile_times:
        sections.append(compile_times)
        sections.append("")
    service = service_trajectory_section()
    if service:
        sections.append(service)
        sections.append("")
    return "\n".join(sections)


BENCH_TRAJECTORY = (
    pathlib.Path(__file__).resolve().parents[3] / "BENCH_simulator.json"
)

COMPILER_TRAJECTORY = (
    pathlib.Path(__file__).resolve().parents[3] / "BENCH_compiler.json"
)

SERVICE_TRAJECTORY = (
    pathlib.Path(__file__).resolve().parents[3] / "BENCH_service.json"
)


def simulator_throughput_section(
    trajectory: pathlib.Path = BENCH_TRAJECTORY,
) -> str:
    """Render the simulator symbols/sec history recorded by
    ``benchmarks/bench_simulator.py`` (empty string if none exists)."""
    if not trajectory.exists():
        return ""
    entries = json.loads(trajectory.read_text(encoding="utf-8"))
    if not entries:
        return ""
    backend_columns = sorted(
        {name for entry in entries for name in entry.get("backends", {})}
    )
    # Every rate is input bytes/sec (one symbol == one input byte at any
    # stride); the bench normalises strided runs by input length, never
    # by the k-fold smaller DFA step count.
    rows: List[Sequence] = [
        ["Label", "Workload", "Golden B/s", "Mapped B/s",
         "run_many agg B/s", "Lazy-DFA warm B/s",
         "Strided warm B/s", "Stride",
         "Sharded scan_many B/s", "Sharded strided B/s",
         "Split B/s (max jobs)", "Split speedup"]
        + [f"{name} B/s" for name in backend_columns]
    ]
    for entry in entries:
        split = entry.get("split_scan", {})
        split_rates = split.get("symbols_per_sec_by_jobs", {})
        split_top = (
            split_rates[max(split_rates, key=int)] if split_rates else "-"
        )
        split_speedup = split.get("speedup_at_max_jobs")
        row = [
            entry.get("label", "?"),
            entry.get("workload", "?"),
            entry.get("golden_symbols_per_sec"),
            entry.get("mapped_symbols_per_sec"),
            entry.get("run_many_aggregate_symbols_per_sec") or "-",
            entry.get("lazy_dfa_warm_symbols_per_sec") or "-",
            entry.get("lazy_dfa_strided_warm_symbols_per_sec") or "-",
            entry.get("stride_effective", entry.get("stride")) or "-",
            entry.get("sharded_scan_many_symbols_per_sec") or "-",
            entry.get("sharded_strided_scan_many_symbols_per_sec") or "-",
            split_top,
            f"{split_speedup:g}x" if split_speedup else "-",
        ]
        for name in backend_columns:
            cell = entry.get("backends", {}).get(name, {})
            if "symbols_per_sec" in cell:
                row.append(cell["symbols_per_sec"])
            elif "skipped" in cell:
                row.append("skipped")
            else:
                row.append("-")
        rows.append(row)
    section = (
        "## Simulator software throughput (BENCH_simulator.json)\n\n"
        + rows_to_markdown(rows)
    )
    if any(entry.get("split_scan") for entry in entries):
        section += (
            "\n\nThe split columns measure intra-stream parallelism: ONE "
            "long stream chunked across a worker pool (SFA entry→exit "
            "mappings, bit-identical join; see DESIGN.md), with speedup "
            "relative to the same entry's jobs=1 serial scan.  The ratio "
            "is bounded by the host's core count — on a single-CPU "
            "runner the parallel chunks time-slice one core and the "
            "honest ratio lands below 1; the per-jobs rates live in each "
            "entry's `split_scan.symbols_per_sec_by_jobs`."
        )
    notes = [
        (entry.get("label", "?"), entry["note"])
        for entry in entries
        if entry.get("note")
    ]
    if notes:
        section += "\n\nEntry notes:\n\n" + "\n".join(
            f"- **{label}** — {note}" for label, note in notes
        )
    counters = _cache_counter_rows(entries)
    if counters:
        section += (
            "\n\n### Simulation cache counters (newest entry)\n\n"
            + rows_to_markdown(counters)
        )
    placement = _hybrid_placement_rows(entries)
    if placement:
        section += (
            "\n\n### Hybrid per-component placement (newest entry)\n\n"
            + rows_to_markdown(placement)
        )
        newest = next(
            entry for entry in reversed(entries) if entry.get("hybrid")
        )
        hybrid = newest["hybrid"]
        if hybrid.get("speedup_vs_best_single") is not None:
            section += (
                f"\n\nHybrid whole-ruleset rate "
                f"{hybrid.get('symbols_per_sec'):,} B/s vs best single "
                f"backend {hybrid.get('best_single_backend')} at "
                f"{hybrid.get('best_single_symbols_per_sec'):,} B/s — "
                f"{hybrid['speedup_vs_best_single']:g}x, reports "
                + (
                    "bit-identical to the golden interpreter."
                    if hybrid.get("bit_identical")
                    else "NOT verified bit-identical."
                )
            )
    return section


def _hybrid_placement_rows(entries: Sequence[dict]) -> List[Sequence]:
    """Per-group placement table from the newest entry carrying a
    ``hybrid`` measurement (see ``benchmarks/bench_simulator.py``)."""
    newest = next(
        (entry for entry in reversed(entries) if entry.get("hybrid")),
        None,
    )
    if newest is None:
        return []
    placement = newest["hybrid"].get("placement") or []
    if not placement:
        return []
    rows: List[Sequence] = [
        ["Group", "Backend", "Requested", "Components", "States"]
    ]
    for group in placement:
        rows.append([
            group.get("group"),
            group.get("backend"),
            group.get("requested"),
            group.get("components"),
            group.get("states"),
        ])
    return rows


def _cache_counter_rows(entries: Sequence[dict]) -> List[Sequence]:
    """Hit/miss/flush table from the newest entry carrying counters."""
    newest = next(
        (
            entry
            for entry in reversed(entries)
            if entry.get("cache_counters")
        ),
        None,
    )
    if newest is None:
        return []
    rows: List[Sequence] = [
        ["Cache", "Hits", "Misses", "Flushes", "Size", "Limit", "Stride",
         "Workers"]
    ]
    for owner, caches in sorted(newest["cache_counters"].items()):
        # Kernel counters nest one dict per cache; the lazy DFA's (and
        # the worker-process aggregates) are a single flat stats dict —
        # normalise to (label, stats) pairs.
        if any(isinstance(value, dict) for value in caches.values()):
            named = [
                (f"{owner}.{cache_name}", stats)
                for cache_name, stats in sorted(caches.items())
                if isinstance(stats, dict)
            ]
        else:
            named = [(owner, caches)]
        for label, stats in named:
            rows.append([
                label,
                stats.get("hits", "-"),
                stats.get("misses", "-"),
                stats.get("flushes", "-"),
                stats.get("size", stats.get("states", "-")),
                stats.get("limit", stats.get("max_states", "-")),
                stats.get("stride", "-"),
                stats.get("workers", "-"),
            ])
    return rows if len(rows) > 1 else []


def compiler_trajectory_section(
    trajectory: pathlib.Path = COMPILER_TRAJECTORY,
) -> str:
    """Render the compile-time history recorded by
    ``benchmarks/bench_compiler.py`` (empty string if none exists).

    One row per workload: cold-compile milliseconds under every recorded
    label, then the artifact-cache columns (cold/warm engine
    construction and their ratio) from the newest entry that measured
    them.
    """
    if not trajectory.exists():
        return ""
    entries = json.loads(trajectory.read_text(encoding="utf-8"))
    if not entries:
        return ""
    labels = [entry.get("label", "?") for entry in entries]
    cached = next(
        (
            entry
            for entry in reversed(entries)
            if any(
                "warm_engine_ms" in stats
                for stats in entry.get("workloads", {}).values()
            )
        ),
        None,
    )
    workloads = sorted(
        {
            name
            for entry in entries
            for name in entry.get("workloads", {})
        },
        key=lambda name: -(
            entries[-1].get("workloads", {}).get(name, {}).get("states", 0)
        ),
    )
    header: List = ["Workload", "States"]
    header += [f"Cold ms ({label})" for label in labels]
    if cached is not None:
        header += ["Cold engine ms", "Warm engine ms", "Warm speedup"]
    rows: List[Sequence] = [header]
    for name in workloads:
        states = next(
            (
                entry["workloads"][name].get("states")
                for entry in reversed(entries)
                if name in entry.get("workloads", {})
            ),
            None,
        )
        row: List = [name, states]
        for entry in entries:
            stats = entry.get("workloads", {}).get(name, {})
            row.append(stats.get("cold_compile_ms", "-"))
        if cached is not None:
            stats = cached.get("workloads", {}).get(name, {})
            row += [
                stats.get("cold_engine_ms", "-"),
                stats.get("warm_engine_ms", "-"),
                f"{stats['warm_speedup']:g}x"
                if stats.get("warm_speedup")
                else "-",
            ]
        rows.append(row)
    return (
        "## Compile-time trajectory (BENCH_compiler.json)\n\n"
        + rows_to_markdown(rows)
    )


def service_trajectory_section(
    trajectory: pathlib.Path = SERVICE_TRAJECTORY,
) -> str:
    """Render the scan-service resilience history recorded by
    ``benchmarks/bench_service.py`` (empty string if none exists).

    One row per (entry, scenario): the execution plane (scan worker
    processes and transport), throughput and latency percentiles next
    to the failure/shed/timeout/retry counters and the breaker and
    worker-supervision events observed under injected faults.  Entries
    recorded at schema version 2+ also get a per-tenant latency table
    (p50/p95/p99 per tenant per scenario).
    """
    if not trajectory.exists():
        return ""
    entries = json.loads(trajectory.read_text(encoding="utf-8"))
    if not entries:
        return ""

    def _plane(run) -> str:
        if "scan_workers" not in run and "transport" not in run:
            return "-"
        return f"{run.get('transport', 'inproc')}/w{run.get('scan_workers', 0)}"

    def _ms(value) -> object:
        return value if value is not None else "-"

    rows: List[Sequence] = [
        ["Label", "Scenario", "Plane", "Sent", "Done", "Shed", "Timeout",
         "Retried", "Thru rps", "p50 ms", "p95 ms", "p99 ms", "Fail rate",
         "Trips", "Recov", "Restarts", "Respawns", "Fallback", "CPU s",
         "Max RSS MB"]
    ]
    tenant_rows: List[Sequence] = [
        ["Label", "Scenario", "Tenant", "Submitted", "Done", "Failed",
         "p50 ms", "p95 ms", "p99 ms"]
    ]
    for entry in entries:
        for run in entry.get("runs", []):
            rows.append([
                entry.get("label", "?"),
                run.get("scenario", "?"),
                _plane(run),
                run.get("requests_sent"),
                run.get("completed"),
                run.get("shed"),
                run.get("timeouts"),
                run.get("retried"),
                run.get("throughput_rps"),
                _ms(run.get("latency_p50_ms")),
                _ms(run.get("latency_p95_ms")),
                _ms(run.get("latency_p99_ms")),
                run.get("failure_rate"),
                run.get("breaker_trips"),
                run.get("breaker_recoveries"),
                run.get("worker_restarts"),
                run.get("pool_respawns", "-"),
                run.get("fallback_scans"),
                _ms(run.get("cpu_time_s")),
                _ms(run.get("max_rss_mb")),
            ])
            per_tenant = run.get("per_tenant") or {}
            for tenant in sorted(per_tenant):
                stats = per_tenant[tenant]
                if "latency_p50_ms" not in stats:
                    continue  # pre-v2 entry: no per-tenant percentiles
                tenant_rows.append([
                    entry.get("label", "?"),
                    run.get("scenario", "?"),
                    tenant,
                    stats.get("submitted"),
                    stats.get("completed"),
                    stats.get("failed"),
                    _ms(stats.get("latency_p50_ms")),
                    _ms(stats.get("latency_p95_ms")),
                    _ms(stats.get("latency_p99_ms")),
                ])
    section = (
        "## Scan-service resilience (BENCH_service.json)\n\n"
        + rows_to_markdown(rows)
        + "\n\nFailure rate counts every request that did not complete — "
        "shed, deadlined, oversized, or abandoned after retry "
        "exhaustion; the fault-injected scenario kills a worker, slows "
        "one tenant past its deadline, submits oversized streams, and "
        "injects primary-backend faults, so its counters demonstrate "
        "the breaker trip → golden-fallback → recovery path (see "
        "DESIGN.md's serving-layer section).  The *Plane* column is "
        "`transport/wN`: how requests reached the service (in-process "
        "calls vs the TCP frame protocol) and how many scan worker "
        "processes executed chunks (`w0` scans in the event loop)."
    )
    if len(tenant_rows) > 1:
        section += (
            "\n\n### Per-tenant latency (serving scenarios)\n\n"
            + rows_to_markdown(tenant_rows)
        )
    notes = [
        (entry.get("label", "?"), entry["note"])
        for entry in entries
        if entry.get("note")
    ]
    if notes:
        section += "\n\nEntry notes:\n\n" + "\n".join(
            f"- **{label}** — {note}" for label, note in notes
        )
    return section


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("output", type=pathlib.Path)
    parser.add_argument("--input-length", type=int, default=DEFAULT_INPUT_LENGTH)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--experiments", nargs="*", default=None)
    arguments = parser.parse_args(argv)
    report = generate_report(
        input_length=arguments.input_length,
        seed=arguments.seed,
        scale=arguments.scale,
        experiments=arguments.experiments,
    )
    arguments.output.write_text(report, encoding="utf-8")
    print(f"wrote {arguments.output} ({len(report.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
