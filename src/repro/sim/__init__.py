"""Simulators: golden reference, mapped functional, and bit-level crossbar."""

from repro.sim.circuit import CircuitRunResult, CircuitSimulator, simulate_circuit
from repro.sim.crossbar import CrossbarLevelSimulator
from repro.sim.functional import MappedRunResult, MappedSimulator, simulate_mapping
from repro.sim.golden import (
    Checkpoint,
    GoldenSimulator,
    Report,
    RunResult,
    RunStats,
    average_active_states,
    match_offsets,
    simulate,
)

__all__ = [
    "Checkpoint",
    "CircuitRunResult",
    "CircuitSimulator",
    "CrossbarLevelSimulator",
    "GoldenSimulator",
    "MappedRunResult",
    "MappedSimulator",
    "Report",
    "RunResult",
    "RunStats",
    "average_active_states",
    "match_offsets",
    "simulate",
    "simulate_circuit",
    "simulate_mapping",
]
