"""Packed-bitset simulation kernel shared by the golden and mapped simulators.

The interpreters in :mod:`repro.sim.golden` and :mod:`repro.sim.functional`
originally stepped one symbol per Python-loop iteration over
arbitrary-precision ints.  This module replaces that representation with
``uint64`` word arrays so the per-symbol work becomes a handful of fixed-size
numpy operations, and layers three accelerations on top:

* **match matrix** — the 256-entry match table is one ``(256, words)``
  ``uint64`` matrix; a whole chunk of input gathers its per-symbol match
  candidates in a single fancy-index operation;
* **successor table** — per-state successor masks live in a dense
  ``(n_bits, words)`` matrix (sparse CSR triplets above a size budget), so
  propagation is a gather plus a bitwise-OR reduction over the active bits
  only, with whole-vector results memoised by the packed bytes of the
  matched vector (the automaton revisits few distinct activation patterns,
  the same locality the paper's partition-disabling hardware exploits);
* **idle fast path** — while no state is active and the start states are
  quiescent, the enabled vector is exactly the all-input start set, so the
  kernel skips ahead over whole input slices with one vectorised
  escape-table lookup instead of stepping per symbol.

Simulators drive the kernel chunk-at-a-time through :meth:`run_chunk`,
which fills per-cycle matched/enabled histories; all statistics (match
counts, partition activity, reports) are then computed *batchwise* over the
packed history arrays, keeping them bit-for-bit identical to the scalar
reference semantics.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.backends.validation import as_symbols  # noqa: F401  (re-export)
from repro.errors import FaultError, SimulationError

#: Symbols processed per kernel chunk (gather + batched-stats granularity).
CHUNK_SYMBOLS = 4096

#: Dense successor-table budget; larger automata use the CSR representation.
DENSE_TABLE_BYTES = 32 * 1024 * 1024

#: Budget for memoised propagation results (bytes of cached rows).
PROPAGATE_CACHE_BYTES = 32 * 1024 * 1024

#: Budget for memoised full-cycle step results (bytes of cached rows).
STEP_CACHE_BYTES = 32 * 1024 * 1024


def _popcount_rows_native(rows: np.ndarray) -> np.ndarray:
    return np.bitwise_count(rows).sum(axis=-1, dtype=np.int64)


def _popcount_rows_unpackbits(rows: np.ndarray) -> np.ndarray:
    # ``np.bitwise_count`` needs numpy >= 2.0; this path serves older
    # installs by widening each uint64 row to bits and summing.
    flat = np.unpackbits(
        np.ascontiguousarray(rows).view(np.uint8), axis=-1
    )
    return flat.sum(axis=-1, dtype=np.int64)


if hasattr(np, "bitwise_count"):
    _popcount_rows_impl = _popcount_rows_native
else:  # pragma: no cover - exercised via the fallback unit test
    _popcount_rows_impl = _popcount_rows_unpackbits


def popcount_rows(rows: np.ndarray) -> np.ndarray:
    """Per-row set-bit counts of a ``(cycles, words)`` uint64 matrix."""
    return _popcount_rows_impl(rows)


def popcount_row(row: np.ndarray) -> int:
    """Total set bits of one packed ``(words,)`` uint64 row."""
    return int(_popcount_rows_impl(np.ascontiguousarray(row)[None, :])[0])


class BitsetKernel:
    """Packed-word execution engine for one fixed automaton bit layout.

    ``n_bits`` is the size of the state vector (for the mapped simulator
    this includes per-partition span padding); ``successor_masks``,
    ``match_table`` (256 entries), ``start_all``, ``start_sod`` and
    ``report_mask`` are the arbitrary-precision-int tables the simulators
    already build — the kernel packs them once at construction.
    """

    def __init__(
        self,
        n_bits: int,
        successor_masks: List[int],
        match_table: List[int],
        start_all: int,
        start_sod: int,
        report_mask: int,
        *,
        dense_limit: int = DENSE_TABLE_BYTES,
    ):
        self.n_bits = n_bits
        self.words = max(1, -(-n_bits // 64))
        self.row_bytes = self.words * 8

        self.match_matrix = self._pack_rows(match_table)
        self.match_matrix.setflags(write=False)
        self.start_all_row = self.pack(start_all)
        self.start_all_row.setflags(write=False)
        self.start_sod_row = self.pack(start_sod)
        self.start_sod_row.setflags(write=False)
        self.report_row = self.pack(report_mask)
        self.report_row.setflags(write=False)
        self.has_sod = start_sod != 0

        # Successor table: dense (n_bits, words) when it fits the budget,
        # else CSR triplets (word index + 64-bit mask per entry).
        self._dense: Optional[np.ndarray] = None
        if n_bits * self.row_bytes <= dense_limit:
            self._dense = self._pack_rows(successor_masks)
            self._dense.setflags(write=False)
        else:
            indptr = [0]
            csr_words: List[int] = []
            csr_masks: List[int] = []
            for mask in successor_masks:
                while mask:
                    word = (mask & -mask).bit_length() - 1 >> 6
                    chunk = (mask >> (word * 64)) & 0xFFFF_FFFF_FFFF_FFFF
                    csr_words.append(word)
                    csr_masks.append(chunk)
                    mask &= ~(0xFFFF_FFFF_FFFF_FFFF << (word * 64))
                indptr.append(len(csr_words))
            self._csr_indptr = np.array(indptr, dtype=np.int64)
            self._csr_words = np.array(csr_words, dtype=np.int64)
            self._csr_masks = np.array(csr_masks, dtype=np.uint64)

        self._init_caches()

    def _init_caches(self):
        """Fresh memoisation state (shared by all construction paths)."""
        self._prop_cache: Dict[bytes, Tuple[np.ndarray, bool]] = {}
        self._prop_cache_limit = max(1024, PROPAGATE_CACHE_BYTES // self.row_bytes)
        self._prop_hits = 0
        self._prop_misses = 0
        # Step cache: full-cycle memo keyed by the packed previous
        # activation row; each state's 256-entry list holds
        # (matched, enabled, next_prev, nonzero, next_state_row) tuples
        # that chain directly to the successor state's list, so the hot
        # loop advances with pure list indexing (see :meth:`run_chunk`).
        self._step_rows: Dict[bytes, list] = {}
        self._step_entries = 0
        self._step_limit = max(1024, STEP_CACHE_BYTES // (2 * self.row_bytes + 160))
        self._step_lookups = 0
        self._step_misses = 0
        self._step_flushes = 0
        self._idle_next: Optional[np.ndarray] = None
        self._idle_escape: Optional[np.ndarray] = None
        self._scratch = np.zeros(self.words, dtype=np.uint64)

    # -- packed-table round-trip ------------------------------------------

    def packed_tables(self) -> Dict[str, np.ndarray]:
        """The kernel's packed tables, keyed for :meth:`from_packed`.

        Everything expensive about kernel construction is the big-int ->
        array conversion; exporting the arrays lets an artefact cache
        round-trip a kernel without ever rebuilding the int masks.
        """
        tables = {
            "n_bits": np.asarray(self.n_bits, dtype=np.int64),
            "match_matrix": self.match_matrix,
            "start_all": self.start_all_row,
            "start_sod": self.start_sod_row,
            "report": self.report_row,
        }
        if self._dense is not None:
            tables["succ_dense"] = self._dense
        else:
            tables["succ_indptr"] = self._csr_indptr
            tables["succ_words"] = self._csr_words
            tables["succ_masks"] = self._csr_masks
        return tables

    @classmethod
    def from_packed(cls, tables: Dict[str, np.ndarray]) -> "BitsetKernel":
        """Rebuild a kernel directly from :meth:`packed_tables` output.

        The tables are validated for mutual consistency (shapes, dtypes,
        word widths) before use: they typically arrive from an on-disk
        artefact cache, and a corrupt artefact must surface here as a
        :class:`SimulationError` the engine can quarantine on — not as a
        wrong-shaped gather deep inside a scan.
        """
        self = cls.__new__(cls)
        try:
            self.n_bits = int(tables["n_bits"])
        except (KeyError, TypeError, ValueError) as error:
            raise SimulationError(f"corrupt kernel tables: {error}") from None
        if self.n_bits <= 0:
            raise SimulationError(
                f"corrupt kernel tables: n_bits={self.n_bits}"
            )
        self.words = max(1, -(-self.n_bits // 64))
        self.row_bytes = self.words * 8

        def frozen(array: np.ndarray, shape) -> np.ndarray:
            array = np.ascontiguousarray(array)
            if array.dtype != np.uint64 or array.shape != shape:
                raise SimulationError(
                    "corrupt kernel tables: expected uint64 array of shape "
                    f"{shape}, got {array.dtype} {array.shape}"
                )
            array.setflags(write=False)
            return array

        try:
            self.match_matrix = frozen(tables["match_matrix"], (256, self.words))
            self.start_all_row = frozen(tables["start_all"], (self.words,))
            self.start_sod_row = frozen(tables["start_sod"], (self.words,))
            self.report_row = frozen(tables["report"], (self.words,))
            self.has_sod = bool(self.start_sod_row.any())
            self._dense = None
            if "succ_dense" in tables:
                self._dense = frozen(
                    tables["succ_dense"], (self.n_bits, self.words)
                )
            else:
                self._csr_indptr = np.ascontiguousarray(tables["succ_indptr"])
                self._csr_words = np.ascontiguousarray(tables["succ_words"])
                self._csr_masks = np.ascontiguousarray(tables["succ_masks"])
                if (
                    self._csr_indptr.shape != (self.n_bits + 1,)
                    or self._csr_words.shape != self._csr_masks.shape
                ):
                    raise SimulationError(
                        "corrupt kernel tables: inconsistent CSR arrays"
                    )
        except KeyError as error:
            raise SimulationError(
                f"corrupt kernel tables: missing {error}"
            ) from None
        self._init_caches()
        return self

    # -- fault modelling ---------------------------------------------------

    def match_parity(self) -> np.ndarray:
        """Per-symbol parity of the match-matrix rows, as ``(256,)`` uint8.

        Models a per-column parity bit stored alongside each STE column:
        any odd number of bit flips in one match-vector read changes the
        read's parity against this table, so single-event upsets in the
        match path are always detectable.
        """
        return (popcount_rows(self.match_matrix) & 1).astype(np.uint8)

    def with_faults(
        self,
        *,
        drop_edges: Tuple[Tuple[int, int], ...] = (),
        stuck_high_bits: Tuple[int, ...] = (),
    ) -> "BitsetKernel":
        """A fault-perturbed copy of this kernel (fresh caches).

        ``drop_edges`` are ``(source_bit, target_bit)`` pairs whose
        crossbar cross-point is stuck at 0 — the transition never fires.
        ``stuck_high_bits`` are state bits whose L-switch enable wire is
        stuck at 1 — the state is enabled every cycle, modelled by
        promoting it to an all-input start state.  The perturbed kernel
        shares nothing mutable with the original.
        """
        if self._dense is None and drop_edges:
            raise FaultError(
                "crossbar fault injection requires the dense successor "
                "table; this automaton uses the CSR representation"
            )
        tables = {
            name: array.copy() for name, array in self.packed_tables().items()
        }
        for source, target in drop_edges:
            if not (0 <= source < self.n_bits and 0 <= target < self.n_bits):
                raise FaultError(
                    f"edge fault ({source}, {target}) outside state space"
                )
            tables["succ_dense"][source, target >> 6] &= ~np.uint64(
                1 << (target & 63)
            )
        for bit in stuck_high_bits:
            if not 0 <= bit < self.n_bits:
                raise FaultError(f"stuck-high bit {bit} outside state space")
            tables["start_all"][bit >> 6] |= np.uint64(1 << (bit & 63))
        return BitsetKernel.from_packed(tables)

    # -- packing -----------------------------------------------------------

    def pack(self, value: int) -> np.ndarray:
        """Arbitrary-precision int -> (words,) uint64 array (little-endian)."""
        try:
            raw = value.to_bytes(self.row_bytes, "little")
        except OverflowError:
            raise SimulationError(
                f"state vector needs more than {self.n_bits} bits; "
                "was the checkpoint taken on a different automaton?"
            ) from None
        return np.frombuffer(raw, dtype=np.uint64).copy()

    def unpack(self, row: np.ndarray) -> int:
        """(words,) uint64 array -> arbitrary-precision int."""
        return int.from_bytes(np.ascontiguousarray(row).tobytes(), "little")

    def _pack_rows(self, masks: List[int]) -> np.ndarray:
        raw = b"".join(mask.to_bytes(self.row_bytes, "little") for mask in masks)
        return (
            np.frombuffer(raw, dtype=np.uint64)
            .reshape(len(masks), self.words)
            .copy()
        )

    def bit_indices(self, row: np.ndarray) -> np.ndarray:
        """Ascending indices of the set bits in one packed row."""
        flat = np.unpackbits(
            np.ascontiguousarray(row).view(np.uint8), bitorder="little"
        )
        return np.flatnonzero(flat)

    # -- propagation -------------------------------------------------------

    def _successors_of(self, row: np.ndarray) -> np.ndarray:
        bits = self.bit_indices(row)
        if bits.size == 0:
            return np.zeros(self.words, dtype=np.uint64)
        if self._dense is not None:
            return np.bitwise_or.reduce(self._dense[bits], axis=0)
        out = np.zeros(self.words, dtype=np.uint64)
        starts = self._csr_indptr[bits]
        counts = self._csr_indptr[bits + 1] - starts
        total = int(counts.sum())
        if total:
            run_starts = np.cumsum(counts) - counts
            sel = np.repeat(starts - run_starts, counts) + np.arange(total)
            np.bitwise_or.at(out, self._csr_words[sel], self._csr_masks[sel])
        return out

    def propagate(self, row: np.ndarray) -> Tuple[np.ndarray, bool]:
        """Enabled-successor row of ``row``, plus a non-zero flag.

        Results are memoised by the packed bytes of ``row``; the returned
        array is read-only and must not be mutated by callers.
        """
        key = np.ascontiguousarray(row).tobytes()
        hit = self._prop_cache.get(key)
        if hit is None:
            self._prop_misses += 1
            out = self._successors_of(row)
            out.setflags(write=False)
            hit = (out, bool(out.any()))
            if len(self._prop_cache) < self._prop_cache_limit:
                self._prop_cache[key] = hit
        else:
            self._prop_hits += 1
        return hit

    def propagate_matrix(self, rows: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Batched propagate: (streams, words) matched rows -> ``out`` rows.

        Every stream shares one memoised propagation table, so a pattern
        any stream has visited is a dictionary hit for all of them.
        Returns a boolean vector flagging which output rows are nonzero,
        so callers can track per-stream idleness without re-scanning.
        """
        nonzero = np.zeros(rows.shape[0], dtype=bool)
        for index in range(rows.shape[0]):
            out[index], nonzero[index] = self.propagate(rows[index])
        return nonzero

    # -- step cache --------------------------------------------------------

    def _step_row(self, prev: np.ndarray) -> list:
        """The step-cache entry list of activation row ``prev``."""
        key = np.ascontiguousarray(prev).tobytes()
        row = self._step_rows.get(key)
        if row is None:
            row = [None] * 256
            self._step_rows[key] = row
        return row

    def _step_miss(self, row: list, prev: np.ndarray, symbol: int) -> tuple:
        """Compute, cache, and return one full-cycle step entry."""
        self._step_misses += 1
        enabled = prev | self.start_all_row
        matched = self.match_matrix[symbol] & enabled
        nxt, nonzero = self.propagate(matched)
        matched.setflags(write=False)
        enabled.setflags(write=False)
        if self._step_entries >= self._step_limit:
            # RE2-style flush-on-overflow: drop every entry and re-intern
            # the current state; the next few cycles repopulate the hot
            # transitions.
            self._step_rows.clear()
            self._step_entries = 0
            self._step_flushes += 1
            row = self._step_row(prev)
        hit = (matched, enabled, nxt, nonzero, self._step_row(nxt))
        row[symbol] = hit
        self._step_entries += 1
        return hit

    def cache_info(self) -> Dict[str, Dict[str, int]]:
        """Hit/miss/flush counters for the kernel's memoisation layers.

        ``propagate`` covers the successor-propagation memo (whole-vector
        gather+OR results); ``step`` covers the full-cycle step cache
        that :meth:`run_chunk`'s non-idle loop runs on.  Step hits are
        derived as lookups minus misses.
        """
        return {
            "propagate": {
                "hits": self._prop_hits,
                "misses": self._prop_misses,
                "size": len(self._prop_cache),
                "limit": self._prop_cache_limit,
            },
            "step": {
                "hits": self._step_lookups - self._step_misses,
                "misses": self._step_misses,
                "flushes": self._step_flushes,
                "size": self._step_entries,
                "limit": self._step_limit,
            },
        }

    # -- idle fast path ----------------------------------------------------

    def _ensure_idle_tables(self):
        if self._idle_next is not None:
            return
        idle_matched = self.match_matrix & self.start_all_row
        nxt = np.zeros((256, self.words), dtype=np.uint64)
        escape = np.zeros(256, dtype=bool)
        for symbol in range(256):
            row, nonzero = self.propagate(idle_matched[symbol])
            nxt[symbol] = row
            escape[symbol] = nonzero
        nxt.setflags(write=False)
        self._idle_next = nxt
        self._idle_escape = escape

    def idle_tables(self) -> Tuple[np.ndarray, np.ndarray]:
        """The ``(next_row, escape)`` idle tables, built on first use.

        ``next_row[symbol]`` is the successor-activation row produced by
        an idle machine (only all-input start states enabled) consuming
        ``symbol``; ``escape[symbol]`` flags the symbols that wake it up
        (nonzero ``next_row``).  Shared by the solo and batched scan
        paths.
        """
        self._ensure_idle_tables()
        return self._idle_next, self._idle_escape

    # -- chunk stepping ----------------------------------------------------

    def run_chunk(
        self,
        sym: np.ndarray,
        matched_rows: np.ndarray,
        enabled_rows: Optional[np.ndarray],
        prev: np.ndarray,
        prev_nonzero: bool,
        sod: bool,
    ) -> Tuple[np.ndarray, bool, bool]:
        """Advance the machine over one chunk of input.

        On entry ``matched_rows`` must be ``match_matrix[sym]``; on exit it
        holds the per-cycle *matched* vectors.  ``enabled_rows`` (optional)
        receives the per-cycle *enabled* vectors — every row is written.
        ``prev`` is the pending successor-activation row (may alias a
        cached, read-only row); returns the updated
        ``(prev, prev_nonzero, sod)`` cursor.

        Non-idle cycles run on the full-cycle step cache: each distinct
        activation row owns a 256-entry list whose tuples carry the
        cycle's matched/enabled rows plus a direct reference to the
        successor row's own list, so a warm transition costs two list
        indexes and no numpy work.  The cache flushes wholesale when the
        entry budget is hit (RE2-style) and repopulates on demand.
        """
        cycles = len(sym)
        start_row = self.start_all_row
        escape_positions: Optional[np.ndarray] = None
        sym_list: Optional[list] = None
        row: Optional[list] = None
        lookups = 0
        i = 0
        while i < cycles:
            if prev_nonzero and not sod:
                if sym_list is None:
                    sym_list = sym.tolist()
                if row is None:
                    row = self._step_row(prev)
                s = sym_list[i]
                hit = row[s]
                if hit is None:
                    hit = self._step_miss(row, prev, s)
                mrow, erow, prev, prev_nonzero, row = hit
                matched_rows[i] = mrow
                if enabled_rows is not None:
                    enabled_rows[i] = erow
                lookups += 1
                i += 1
                continue
            if sod:
                # Start-of-data enables extra start states for exactly one
                # cycle; step it outside the cache so cached entries stay
                # keyed purely by the activation row.
                if enabled_rows is None:
                    erow = self._scratch
                else:
                    erow = enabled_rows[i]
                np.bitwise_or(prev, start_row, out=erow)
                erow |= self.start_sod_row
                sod = False
                mrow = matched_rows[i]
                mrow &= erow
                prev, prev_nonzero = self.propagate(mrow)
                row = None
                i += 1
                continue
            # Idle: the enabled vector is exactly the all-input start set
            # until a symbol whose matched start states have successors.
            if self._idle_escape is None:
                self._ensure_idle_tables()
            if escape_positions is None:
                escape_positions = np.flatnonzero(self._idle_escape[sym])
            cursor = int(np.searchsorted(escape_positions, i))
            if cursor < escape_positions.size:
                j = int(escape_positions[cursor])
            else:
                j = cycles
            if j > i:
                matched_rows[i:j] &= start_row
                if enabled_rows is not None:
                    enabled_rows[i:j] = start_row
            if j < cycles:
                if enabled_rows is not None:
                    enabled_rows[j] = start_row
                matched_rows[j] &= start_row
                prev = self._idle_next[int(sym[j])]
                prev_nonzero = True
                row = None
            i = j + 1
        self._step_lookups += lookups
        return prev, prev_nonzero, sod
