"""Lazy-DFA execution layer over the packed-bitset kernel.

The packed kernel (:mod:`repro.sim.kernel`) pays a handful of numpy
operations per non-idle cycle; the eager CPU-DFA baseline avoids that
per-cycle work but its subset construction blows up on real rule sets
(PowerEN aborts past 4000 states).  This module takes the middle road
the fast CPU regex engines take (RE2, Hyperscan): determinise *lazily*,
caching only the DFA states an input actually visits.

A DFA state is one distinct pending successor-activation row of the
underlying :class:`~repro.sim.kernel.BitsetKernel` — the packed vector
``run_chunk`` threads between cycles.  Rows are hash-consed into dense
integer ids; each state owns a transition row filled on demand.  A
transition records the successor state id plus the cycle's report
outcome, so a warm transition costs two Python list indexes and zero
numpy work.  Canonical ``(state, symbol) -> (next_id, report count)``
tables are kept in parallel ``int32`` arrays — the form the
process-sharded scanner (:mod:`repro.sim.shard`) publishes through
shared memory so worker processes start with a warm cache.

**k-stride execution** (CAMA's alphabet transformation): with a
:class:`~repro.automata.stride.StrideAlphabet` the DFA consumes k input
bytes per cached transition.  Transition rows are indexed by the
*compressed* stride-class id — the k-fold product of byte equivalence
classes, typically a few hundred columns, never a dense ``256**k``
row.  A missing strided transition is materialised by stepping the
unstrided kernel over the class's representative bytes (every window
in a class drives the kernel identically), recording the successor row
plus a flush-immune *report combo* — the ``(intra-window offset,
event id)`` pairs fired along the way — so strided report events expand
to exactly the offsets and reporting-row identities the unstrided run
produces.  Input whose length is not a multiple of k ends with uncached
single-byte tail cycles, and the start-of-data cycle always runs
unstrided, so checkpoints taken at *any* byte offset interoperate
bit-identically with every other execution path.

The state/transition budget is bounded: when interning would exceed it,
the whole cache is flushed and repopulated on demand (RE2's policy —
cheap, and an adversarial input degrades to the kernel's propagate
path instead of exhausting memory).  Reporting transitions additionally
record the packed *reporting-row* bytes in a flush-immune event table,
so callers can materialise golden-convention :class:`Report` objects
(full STE identity) lazily and bit-identically.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.automata.stride import StrideAlphabet, resolve_stride
from repro.errors import StrideError
from repro.sim.kernel import BitsetKernel, popcount_row

#: Budget for cached DFA states (transition rows + packed vectors).
DFA_CACHE_BYTES = 16 * 1024 * 1024

#: Per-state cache cost estimate at width 256: int32 next/reps rows +
#: the Python transition list (~8 bytes/slot + header) + the interned
#: packed row.  Strided kernels scale the row terms by their width.
_STATE_COST_BYTES = 256 * (4 + 4 + 8) + 512

#: ``cache_info``-style keys that accumulate across workers; everything
#: else (state counts, budgets, stride geometry) is a gauge and merges
#: by maximum.
_MERGE_SUM_KEYS = frozenset(
    ("hits", "misses", "flushes", "events", "tail_steps", "effects")
)


def merge_cache_infos(infos) -> Dict[str, int]:
    """Aggregate ``cache_info()`` dicts across scan workers.

    Counters (hits/misses/flushes/events/tail steps/effects) sum;
    gauges (state counts, budgets, stride geometry) take the maximum;
    ``workers`` counts the dicts merged.  The operation is associative
    — merging previously-merged aggregates (each contributing its own
    ``workers`` count) gives the same totals as merging the originals —
    so a backend can fold each scan's worker counters into one running
    aggregate instead of retaining every per-worker dict.
    """
    merged: Dict[str, int] = {}
    workers = 0
    for info in infos:
        workers += int(info.get("workers", 1))
        for key, value in info.items():
            if key == "workers":
                continue
            if key in _MERGE_SUM_KEYS:
                merged[key] = merged.get(key, 0) + int(value)
            else:
                merged[key] = max(merged.get(key, 0), int(value))
    merged["workers"] = workers
    return merged


class LazyDfaKernel:
    """On-demand determinisation of one :class:`BitsetKernel`.

    ``stride``/``alphabet`` select k-stride execution: pass ``stride=2``
    to derive the compressed alphabet from the kernel's match matrix, or
    an explicit :class:`StrideAlphabet` (e.g. rebuilt from cached or
    shared tables).  The *effective* stride may be smaller than
    requested when the class budget forces a degrade — see
    :meth:`cache_info`.

    ``max_states`` bounds the cached DFA (default derived from
    ``cache_bytes``); crossing it flushes the whole cache, RE2-style.
    The instance is single-threaded mutable state — share the underlying
    kernel across threads/processes, not this object.
    """

    def __init__(
        self,
        kernel: BitsetKernel,
        *,
        cache_bytes: int = DFA_CACHE_BYTES,
        max_states: Optional[int] = None,
        stride: Union[int, str, None] = 1,
        alphabet: Optional[StrideAlphabet] = None,
    ):
        self._kernel = kernel
        if alphabet is None:
            stride = resolve_stride(stride)
            if stride > 1:
                alphabet = StrideAlphabet.from_kernel(kernel, stride)
            self._stride_requested = stride
        else:
            self._stride_requested = alphabet.stride
        if alphabet is not None and alphabet.stride == 1:
            alphabet = None
        self._alphabet = alphabet
        self._stride = alphabet.stride if alphabet is not None else 1
        self._width = (
            alphabet.n_stride_classes if alphabet is not None else 256
        )
        if max_states is None:
            # The state *budget* is stride-invariant: a strided kernel
            # visits the same activation rows as the unstrided one, so
            # shrinking the state count by the wider table's per-state
            # cost would thrash exactly the workloads striding targets.
            # A strided table instead spends proportionally more bytes
            # (width/256 × the nominal budget, worst case) — that is
            # the classic multi-stride memory-for-throughput trade.
            max_states = cache_bytes // (_STATE_COST_BYTES + kernel.row_bytes)
        self._max_states = max(64, int(max_states))
        self._lookups = 0
        self._misses = 0
        self._flushes = 0
        self._tail_steps = 0
        # Report events are flush-immune: event ids stay valid for the
        # lifetime of the kernel, so encoded transitions created after a
        # flush can reuse them and callers can resolve identity lazily.
        self._events: List[Tuple[int, bytes]] = []
        self._event_of: Dict[bytes, int] = {}
        # Report combos (strided path): the report events a k-byte
        # transition fires, as (intra-window offset, event id) pairs.
        # Flush-immune for the same reason events are.
        self._combos: List[Tuple[Tuple[int, int], ...]] = []
        self._combo_totals: List[int] = []
        self._combo_of: Dict[Tuple[Tuple[int, int], ...], int] = {}
        self._reset_states()

    def _reset_states(self):
        self._ids: Dict[bytes, int] = {}
        self._rows: List[np.ndarray] = []
        #: Hot-loop view: per-state width-entry lists of encoded
        #: transitions (-1 missing; ``next_id`` when silent; else
        #: ``(event_or_combo_id + 1) << 32 | next_id`` — an event id
        #: unstrided, a combo id strided).
        self._enc_rows: List[list] = []
        capacity = 256
        self._next = np.full((capacity, self._width), -1, dtype=np.int32)
        self._reps = np.zeros((capacity, self._width), dtype=np.int32)

    # -- state interning ---------------------------------------------------

    def intern(self, row: np.ndarray) -> int:
        """Dense DFA state id of packed activation row ``row``."""
        key = np.ascontiguousarray(row).tobytes()
        sid = self._ids.get(key)
        if sid is None:
            sid = len(self._rows)
            self._ids[key] = sid
            frozen = np.frombuffer(key, dtype=np.uint64)
            self._rows.append(frozen)
            self._enc_rows.append([-1] * self._width)
            while sid >= self._next.shape[0]:
                self._next = self._grow(self._next, -1)
                self._reps = self._grow(self._reps, 0)
        return sid

    @staticmethod
    def _grow(table: np.ndarray, fill: int) -> np.ndarray:
        grown = np.full(
            (table.shape[0] * 2, table.shape[1]), fill, dtype=np.int32
        )
        grown[: table.shape[0]] = table
        return grown

    @property
    def dfa_states(self) -> int:
        """Number of DFA states currently interned."""
        return len(self._rows)

    @property
    def stride(self) -> int:
        """Effective stride (after any class-budget degrade)."""
        return self._stride

    @property
    def alphabet(self) -> Optional[StrideAlphabet]:
        """The compressed stride alphabet, or ``None`` when unstrided."""
        return self._alphabet

    def state_row(self, sid: int) -> np.ndarray:
        """The packed activation row interned as state ``sid``."""
        return self._rows[sid]

    def event(self, event_id: int) -> Tuple[int, bytes]:
        """``(report_count, reporting_row_bytes)`` of one report event."""
        return self._events[event_id]

    # -- transition construction -------------------------------------------

    def _event_id(self, count: int, rep_bytes: bytes) -> int:
        event_id = self._event_of.get(rep_bytes)
        if event_id is None:
            event_id = len(self._events)
            self._event_of[rep_bytes] = event_id
            self._events.append((count, rep_bytes))
        return event_id

    def _combo_id(self, combo: Tuple[Tuple[int, int], ...], total: int) -> int:
        combo_id = self._combo_of.get(combo)
        if combo_id is None:
            combo_id = len(self._combos)
            self._combo_of[combo] = combo_id
            self._combos.append(combo)
            self._combo_totals.append(total)
        return combo_id

    def _plain_step(self, prev: np.ndarray, symbol: int):
        """One uncached cycle (no start-of-data states)."""
        kernel = self._kernel
        enabled = prev | kernel.start_all_row
        matched = kernel.match_matrix[symbol] & enabled
        nxt, _ = kernel.propagate(matched)
        rep_row = matched & kernel.report_row
        return nxt, popcount_row(rep_row), rep_row

    def _miss(self, sid: int, symbol: int) -> Tuple[int, int]:
        """Fill the ``(sid, symbol)`` transition; returns ``(sid, enc)``.

        May flush the whole cache (when the state budget is exhausted);
        the returned ``sid`` is the — possibly re-interned — id of the
        *current* state, so the scan loop's cursor survives the remap.
        """
        self._misses += 1
        prev = self._rows[sid]
        nxt, count, rep_row = self._plain_step(prev, symbol)
        if len(self._rows) >= self._max_states:
            self._flushes += 1
            self._reset_states()
            sid = self.intern(prev)
        nid = self.intern(nxt)
        if count == 0:
            enc = nid
        else:
            enc = ((self._event_id(count, rep_row.tobytes()) + 1) << 32) | nid
        self._enc_rows[sid][symbol] = enc
        self._next[sid, symbol] = nid
        self._reps[sid, symbol] = count
        return sid, enc

    def _miss_strided(self, sid: int, sclass: int) -> Tuple[int, int]:
        """Fill the ``(sid, stride class)`` transition.

        Materialised by running the class's representative window
        through k unstrided kernel cycles — any window in the class
        yields the same successor row and report events, because bytes
        in one equivalence class have identical match-matrix rows.
        """
        self._misses += 1
        prev = self._rows[sid]
        row = prev
        combo: List[Tuple[int, int]] = []
        total = 0
        for delta, byte in enumerate(
            self._alphabet.representative_bytes(sclass)
        ):
            row, count, rep_row = self._plain_step(row, byte)
            if count:
                total += count
                combo.append((delta, self._event_id(count, rep_row.tobytes())))
        if len(self._rows) >= self._max_states:
            self._flushes += 1
            self._reset_states()
            sid = self.intern(prev)
        nid = self.intern(row)
        if total == 0:
            enc = nid
        else:
            enc = ((self._combo_id(tuple(combo), total) + 1) << 32) | nid
        self._enc_rows[sid][sclass] = enc
        self._next[sid, sclass] = nid
        self._reps[sid, sclass] = total
        return sid, enc

    def _sod_step(self, prev: np.ndarray, symbol: int):
        """One uncached cycle with the start-of-data states enabled."""
        kernel = self._kernel
        enabled = prev | kernel.start_all_row | kernel.start_sod_row
        matched = kernel.match_matrix[symbol] & enabled
        nxt, _ = kernel.propagate(matched)
        rep_row = matched & kernel.report_row
        return nxt, popcount_row(rep_row), rep_row

    # -- scanning ----------------------------------------------------------

    def scan(
        self,
        symbols: np.ndarray,
        *,
        prev: np.ndarray,
        sod: bool,
        collect_events: bool = True,
    ) -> Tuple[List[Tuple[int, int]], int, np.ndarray, bool]:
        """Drive the DFA over ``symbols`` from activation row ``prev``.

        Returns ``(events, report_total, final_row, sod)`` where
        ``events`` is a list of ``(offset, event_id)`` report events in
        stream order (empty unless ``collect_events``), ``report_total``
        counts every reporting STE firing, and ``final_row`` is the
        pending activation row after the last symbol — exactly the
        cursor :meth:`BitsetKernel.run_chunk` would have produced, so
        checkpoints interoperate with every other execution path,
        strided or not.
        """
        if self._alphabet is not None:
            return self._scan_strided(
                symbols, prev=prev, sod=sod, collect_events=collect_events
            )
        events: List[Tuple[int, int]] = []
        report_total = 0
        length = len(symbols)
        if length == 0:
            return events, report_total, prev, sod
        sym_list = symbols.tolist()
        i = 0
        if sod:
            # Start-of-data states are enabled for exactly one cycle, so
            # that cycle runs outside the cache and the DFA proper only
            # ever sees transitions keyed by the activation row alone.
            prev, count, rep_row = self._sod_step(prev, sym_list[0])
            if count:
                report_total += count
                if collect_events:
                    events.append((0, self._event_id(count, rep_row.tobytes())))
            sod = False
            i = 1
        self._lookups += length - i
        sid = self.intern(prev)
        enc_rows = self._enc_rows
        row = enc_rows[sid]
        while i < length:
            value = row[sym_list[i]]
            if value < 0:
                sid, value = self._miss(sid, sym_list[i])
                enc_rows = self._enc_rows
            if value < 4294967296:
                sid = value
            else:
                sid = value & 4294967295
                event_id = (value >> 32) - 1
                report_total += self._events[event_id][0]
                if collect_events:
                    events.append((i, event_id))
            row = enc_rows[sid]
            i += 1
        return events, report_total, self._rows[sid], sod

    def _scan_strided(
        self,
        symbols: np.ndarray,
        *,
        prev: np.ndarray,
        sod: bool,
        collect_events: bool,
    ) -> Tuple[List[Tuple[int, int]], int, np.ndarray, bool]:
        """k-stride scan: cached k-byte groups plus an unstrided tail.

        Report combos expand to absolute ``(offset, event id)`` pairs,
        so callers see exactly the event stream the unstrided scan
        emits — same offsets, same flush-immune event ids.
        """
        events: List[Tuple[int, int]] = []
        report_total = 0
        length = len(symbols)
        if length == 0:
            return events, report_total, prev, sod
        pos = 0
        if sod:
            prev, count, rep_row = self._sod_step(prev, int(symbols[0]))
            if count:
                report_total += count
                if collect_events:
                    events.append((0, self._event_id(count, rep_row.tobytes())))
            sod = False
            pos = 1
        k = self._stride
        groups = (length - pos) // k
        tail_start = pos + groups * k
        if groups:
            classes = self._alphabet.stride_classes(
                symbols[pos:tail_start]
            ).tolist()
            self._lookups += groups
            sid = self.intern(prev)
            enc_rows = self._enc_rows
            row = enc_rows[sid]
            combos = self._combos
            combo_totals = self._combo_totals
            for j in range(groups):
                value = row[classes[j]]
                if value < 0:
                    sid, value = self._miss_strided(sid, classes[j])
                    enc_rows = self._enc_rows
                    combos = self._combos
                    combo_totals = self._combo_totals
                if value < 4294967296:
                    sid = value
                else:
                    sid = value & 4294967295
                    combo_id = (value >> 32) - 1
                    report_total += combo_totals[combo_id]
                    if collect_events:
                        group_base = pos + j * k
                        for delta, event_id in combos[combo_id]:
                            events.append((group_base + delta, event_id))
                row = enc_rows[sid]
            prev = self._rows[sid]
        # Odd-length tail: fall back to uncached unstrided cycles so the
        # final activation row (the resume cursor) is bit-identical to
        # the unstrided run's.
        for i in range(tail_start, length):
            self._tail_steps += 1
            prev, count, rep_row = self._plain_step(prev, int(symbols[i]))
            if count:
                report_total += count
                if collect_events:
                    events.append((i, self._event_id(count, rep_row.tobytes())))
        return events, report_total, prev, sod

    # -- sharding support --------------------------------------------------

    def export_tables(self) -> Dict[str, np.ndarray]:
        """Canonical DFA tables for publication to worker processes.

        ``dfa_rows`` are the interned packed activation rows (state id
        order); ``dfa_next``/``dfa_reps`` the ``(states, width)`` int32
        transition tables (-1 = not yet computed), where width is 256
        unstrided or the compressed stride-class count.  A strided
        kernel additionally ships its alphabet (``stride_k``,
        ``stride_class_of``, ``stride_reps``) so workers rebuild the
        identical class map.  Reporting-row bytes are deliberately *not*
        exported — a seeded worker recomputes a reporting transition on
        first use (see :meth:`seed`).
        """
        states = len(self._rows)
        words = self._kernel.words
        if states:
            rows = np.ascontiguousarray(np.stack(self._rows))
        else:
            rows = np.zeros((0, words), dtype=np.uint64)
        tables = {
            "dfa_rows": rows,
            "dfa_next": np.ascontiguousarray(self._next[:states]),
            "dfa_reps": np.ascontiguousarray(self._reps[:states]),
        }
        if self._alphabet is not None:
            tables.update(self._alphabet.tables())
        return tables

    def seed(
        self, rows: np.ndarray, nxt: np.ndarray, reps: np.ndarray
    ) -> None:
        """Warm-start from :meth:`export_tables` output.

        Non-reporting transitions seed directly into the hot-loop lists;
        reporting ones stay missing (their reporting-row bytes were not
        shipped) and recompute through the miss path on first use — a
        one-time propagate per distinct reporting transition.
        """
        nxt = np.asarray(nxt)
        if nxt.ndim == 2 and nxt.shape[0] and nxt.shape[1] != self._width:
            raise StrideError(
                f"seed tables have width {nxt.shape[1]} but this kernel's "
                f"stride-{self._stride} alphabet has width {self._width}"
            )
        states = len(rows)
        if not states:
            return
        silent = np.where(np.asarray(reps) == 0, nxt, -1)
        if not self._rows:
            # Bulk path for a fresh kernel (the shard-worker case):
            # intern without per-row placeholder lists and convert the
            # whole silent table in one C-level call — at stride >1 the
            # table is states x C**k and the per-row loop dominates
            # worker startup.
            # Copy: the caller's rows may view shared memory that is
            # unmapped right after seeding.
            contiguous = np.array(rows, dtype=np.uint64)
            contiguous.setflags(write=False)
            for index in range(states):
                self._ids[contiguous[index].tobytes()] = index
            self._rows = list(contiguous)
            self._enc_rows = silent.tolist()
            while states > self._next.shape[0]:
                self._next = self._grow(self._next, -1)
                self._reps = self._grow(self._reps, 0)
        else:
            silent_lists = silent.tolist()
            for sid_source in range(states):
                sid = self.intern(rows[sid_source])
                self._enc_rows[sid] = silent_lists[sid_source]
        self._next[:states] = nxt
        self._reps[:states] = reps

    # -- introspection -----------------------------------------------------

    def cache_info(self) -> Dict[str, int]:
        """Transition-cache effectiveness counters.

        ``hits`` is derived (lookups minus misses); ``flushes`` counts
        wholesale cache resets; ``events`` the distinct reporting
        transitions recorded since construction.  ``stride`` is the
        effective stride after any class-budget degrade
        (``stride_requested`` keeps the asked-for value);
        ``stride_classes`` is the transition-row width and
        ``tail_steps`` counts uncached odd-tail cycles.
        """
        return {
            "states": len(self._rows),
            "max_states": self._max_states,
            "hits": self._lookups - self._misses,
            "misses": self._misses,
            "flushes": self._flushes,
            "events": len(self._events),
            "stride": self._stride,
            "stride_requested": self._stride_requested,
            "stride_classes": self._width,
            "tail_steps": self._tail_steps,
        }
