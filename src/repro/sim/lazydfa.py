"""Lazy-DFA execution layer over the packed-bitset kernel.

The packed kernel (:mod:`repro.sim.kernel`) pays a handful of numpy
operations per non-idle cycle; the eager CPU-DFA baseline avoids that
per-cycle work but its subset construction blows up on real rule sets
(PowerEN aborts past 4000 states).  This module takes the middle road
the fast CPU regex engines take (RE2, Hyperscan): determinise *lazily*,
caching only the DFA states an input actually visits.

A DFA state is one distinct pending successor-activation row of the
underlying :class:`~repro.sim.kernel.BitsetKernel` — the packed vector
``run_chunk`` threads between cycles.  Rows are hash-consed into dense
integer ids; each state owns a 256-entry transition row filled on
demand.  A transition records the successor state id plus the cycle's
report outcome, so a warm transition costs two Python list indexes and
zero numpy work.  Canonical ``(state, symbol) -> (next_id, report
count)`` tables are kept in parallel ``int32`` arrays — the form the
process-sharded scanner (:mod:`repro.sim.shard`) publishes through
shared memory so worker processes start with a warm cache.

The state/transition budget is bounded: when interning would exceed it,
the whole cache is flushed and repopulated on demand (RE2's policy —
cheap, and an adversarial input degrades to the kernel's propagate
path instead of exhausting memory).  Reporting transitions additionally
record the packed *reporting-row* bytes in a flush-immune event table,
so callers can materialise golden-convention :class:`Report` objects
(full STE identity) lazily and bit-identically.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.sim.kernel import BitsetKernel, popcount_row

#: Budget for cached DFA states (transition rows + packed vectors).
DFA_CACHE_BYTES = 16 * 1024 * 1024

#: Per-state cache cost estimate: int32 next/reps rows + the Python
#: transition list (~8 bytes/slot + header) + the interned packed row.
_STATE_COST_BYTES = 256 * (4 + 4 + 8) + 512


class LazyDfaKernel:
    """On-demand determinisation of one :class:`BitsetKernel`.

    ``max_states`` bounds the cached DFA (default derived from
    ``cache_bytes``); crossing it flushes the whole cache, RE2-style.
    The instance is single-threaded mutable state — share the underlying
    kernel across threads/processes, not this object.
    """

    def __init__(
        self,
        kernel: BitsetKernel,
        *,
        cache_bytes: int = DFA_CACHE_BYTES,
        max_states: Optional[int] = None,
    ):
        self._kernel = kernel
        if max_states is None:
            max_states = cache_bytes // (_STATE_COST_BYTES + kernel.row_bytes)
        self._max_states = max(64, int(max_states))
        self._lookups = 0
        self._misses = 0
        self._flushes = 0
        # Report events are flush-immune: event ids stay valid for the
        # lifetime of the kernel, so encoded transitions created after a
        # flush can reuse them and callers can resolve identity lazily.
        self._events: List[Tuple[int, bytes]] = []
        self._event_of: Dict[bytes, int] = {}
        self._reset_states()

    def _reset_states(self):
        self._ids: Dict[bytes, int] = {}
        self._rows: List[np.ndarray] = []
        #: Hot-loop view: per-state 256-entry lists of encoded
        #: transitions (-1 missing; ``next_id`` when silent; else
        #: ``(event_id + 1) << 32 | next_id``).
        self._enc_rows: List[list] = []
        capacity = 256
        self._next = np.full((capacity, 256), -1, dtype=np.int32)
        self._reps = np.zeros((capacity, 256), dtype=np.int32)

    # -- state interning ---------------------------------------------------

    def intern(self, row: np.ndarray) -> int:
        """Dense DFA state id of packed activation row ``row``."""
        key = np.ascontiguousarray(row).tobytes()
        sid = self._ids.get(key)
        if sid is None:
            sid = len(self._rows)
            self._ids[key] = sid
            frozen = np.frombuffer(key, dtype=np.uint64)
            self._rows.append(frozen)
            self._enc_rows.append([-1] * 256)
            while sid >= self._next.shape[0]:
                self._next = self._grow(self._next, -1)
                self._reps = self._grow(self._reps, 0)
        return sid

    @staticmethod
    def _grow(table: np.ndarray, fill: int) -> np.ndarray:
        grown = np.full((table.shape[0] * 2, 256), fill, dtype=np.int32)
        grown[: table.shape[0]] = table
        return grown

    @property
    def dfa_states(self) -> int:
        """Number of DFA states currently interned."""
        return len(self._rows)

    def state_row(self, sid: int) -> np.ndarray:
        """The packed activation row interned as state ``sid``."""
        return self._rows[sid]

    def event(self, event_id: int) -> Tuple[int, bytes]:
        """``(report_count, reporting_row_bytes)`` of one report event."""
        return self._events[event_id]

    # -- transition construction -------------------------------------------

    def _event_id(self, count: int, rep_bytes: bytes) -> int:
        event_id = self._event_of.get(rep_bytes)
        if event_id is None:
            event_id = len(self._events)
            self._event_of[rep_bytes] = event_id
            self._events.append((count, rep_bytes))
        return event_id

    def _miss(self, sid: int, symbol: int) -> Tuple[int, int]:
        """Fill the ``(sid, symbol)`` transition; returns ``(sid, enc)``.

        May flush the whole cache (when the state budget is exhausted);
        the returned ``sid`` is the — possibly re-interned — id of the
        *current* state, so the scan loop's cursor survives the remap.
        """
        self._misses += 1
        kernel = self._kernel
        prev = self._rows[sid]
        enabled = prev | kernel.start_all_row
        matched = kernel.match_matrix[symbol] & enabled
        nxt, _ = kernel.propagate(matched)
        rep_row = matched & kernel.report_row
        count = popcount_row(rep_row)
        if len(self._rows) >= self._max_states:
            self._flushes += 1
            self._reset_states()
            sid = self.intern(prev)
        nid = self.intern(nxt)
        if count == 0:
            enc = nid
        else:
            enc = ((self._event_id(count, rep_row.tobytes()) + 1) << 32) | nid
        self._enc_rows[sid][symbol] = enc
        self._next[sid, symbol] = nid
        self._reps[sid, symbol] = count
        return sid, enc

    def _sod_step(self, prev: np.ndarray, symbol: int):
        """One uncached cycle with the start-of-data states enabled."""
        kernel = self._kernel
        enabled = prev | kernel.start_all_row | kernel.start_sod_row
        matched = kernel.match_matrix[symbol] & enabled
        nxt, _ = kernel.propagate(matched)
        rep_row = matched & kernel.report_row
        return nxt, popcount_row(rep_row), rep_row

    # -- scanning ----------------------------------------------------------

    def scan(
        self,
        symbols: np.ndarray,
        *,
        prev: np.ndarray,
        sod: bool,
        collect_events: bool = True,
    ) -> Tuple[List[Tuple[int, int]], int, np.ndarray, bool]:
        """Drive the DFA over ``symbols`` from activation row ``prev``.

        Returns ``(events, report_total, final_row, sod)`` where
        ``events`` is a list of ``(offset, event_id)`` report events in
        stream order (empty unless ``collect_events``), ``report_total``
        counts every reporting STE firing, and ``final_row`` is the
        pending activation row after the last symbol — exactly the
        cursor :meth:`BitsetKernel.run_chunk` would have produced, so
        checkpoints interoperate with every other execution path.
        """
        events: List[Tuple[int, int]] = []
        report_total = 0
        length = len(symbols)
        if length == 0:
            return events, report_total, prev, sod
        sym_list = symbols.tolist()
        i = 0
        if sod:
            # Start-of-data states are enabled for exactly one cycle, so
            # that cycle runs outside the cache and the DFA proper only
            # ever sees transitions keyed by the activation row alone.
            prev, count, rep_row = self._sod_step(prev, sym_list[0])
            if count:
                report_total += count
                if collect_events:
                    events.append((0, self._event_id(count, rep_row.tobytes())))
            sod = False
            i = 1
        self._lookups += length - i
        sid = self.intern(prev)
        enc_rows = self._enc_rows
        row = enc_rows[sid]
        while i < length:
            value = row[sym_list[i]]
            if value < 0:
                sid, value = self._miss(sid, sym_list[i])
                enc_rows = self._enc_rows
            if value < 4294967296:
                sid = value
            else:
                sid = value & 4294967295
                event_id = (value >> 32) - 1
                report_total += self._events[event_id][0]
                if collect_events:
                    events.append((i, event_id))
            row = enc_rows[sid]
            i += 1
        return events, report_total, self._rows[sid], sod

    # -- sharding support --------------------------------------------------

    def export_tables(self) -> Dict[str, np.ndarray]:
        """Canonical DFA tables for publication to worker processes.

        ``dfa_rows`` are the interned packed activation rows (state id
        order); ``dfa_next``/``dfa_reps`` the ``(states, 256)`` int32
        transition tables (-1 = not yet computed).  Reporting-row bytes
        are deliberately *not* exported — a seeded worker recomputes a
        reporting transition on first use (see :meth:`seed`).
        """
        states = len(self._rows)
        words = self._kernel.words
        if states:
            rows = np.ascontiguousarray(np.stack(self._rows))
        else:
            rows = np.zeros((0, words), dtype=np.uint64)
        return {
            "dfa_rows": rows,
            "dfa_next": np.ascontiguousarray(self._next[:states]),
            "dfa_reps": np.ascontiguousarray(self._reps[:states]),
        }

    def seed(
        self, rows: np.ndarray, nxt: np.ndarray, reps: np.ndarray
    ) -> None:
        """Warm-start from :meth:`export_tables` output.

        Non-reporting transitions seed directly into the hot-loop lists;
        reporting ones stay missing (their reporting-row bytes were not
        shipped) and recompute through :meth:`_miss` on first use — a
        one-time propagate per distinct reporting transition.
        """
        for row in rows:
            self.intern(row)
        states = len(rows)
        if not states:
            return
        self._next[:states] = nxt
        self._reps[:states] = reps
        silent = np.where(reps == 0, nxt, -1)
        for sid in range(states):
            self._enc_rows[sid] = silent[sid].tolist()

    # -- introspection -----------------------------------------------------

    def cache_info(self) -> Dict[str, int]:
        """Transition-cache effectiveness counters.

        ``hits`` is derived (lookups minus misses); ``flushes`` counts
        wholesale cache resets; ``events`` the distinct reporting
        transitions recorded since construction.
        """
        return {
            "states": len(self._rows),
            "max_states": self._max_states,
            "hits": self._lookups - self._misses,
            "misses": self._misses,
            "flushes": self._flushes,
            "events": len(self._events),
        }
