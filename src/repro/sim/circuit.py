"""Reference simulator for ANML circuits (STEs + gates + counters).

Executes the full element semantics documented in
:mod:`repro.automata.elements`; used to validate circuit front-ends and
the OR-gate lowering pass (a lowered circuit must report identically).
Circuits are small (counters gate a handful of patterns), so a clear
set-based implementation is preferred over the bitmask machinery of the
pure-NFA simulators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.automata.anml import StartKind
from repro.automata.elements import (
    PORT_ACTIVATE,
    PORT_COUNT,
    PORT_RESET,
    CircuitAutomaton,
    CounterMode,
    GateKind,
)
from repro.backends.validation import require_bytes
from repro.sim.golden import Report


@dataclass
class CounterState:
    value: int = 0
    latched: bool = False


@dataclass
class CircuitRunResult:
    reports: List[Report]
    #: Final counter values (counter id -> value), for inspection.
    counter_values: Dict[str, int] = field(default_factory=dict)

    def report_offsets(self) -> List[int]:
        return sorted({report.offset for report in self.reports})


class CircuitSimulator:
    """Cycle-by-cycle interpreter for a validated circuit."""

    def __init__(self, circuit: CircuitAutomaton):
        circuit.validate()
        self.circuit = circuit
        self._ste_ids = {s.ste_id for s in circuit.stes()}
        self._gate_order = circuit.gate_evaluation_order()
        # Pre-index wiring.
        self._ste_enables: Dict[str, List[str]] = {}  # source -> STE targets
        self._count_inputs: Dict[str, List[str]] = {}
        self._reset_inputs: Dict[str, List[str]] = {}
        for source, target, port in circuit.edges():
            if port == PORT_ACTIVATE and target in self._ste_ids:
                self._ste_enables.setdefault(source, []).append(target)
            elif port == PORT_COUNT:
                self._count_inputs.setdefault(target, []).append(source)
            elif port == PORT_RESET:
                self._reset_inputs.setdefault(target, []).append(source)

    def run(self, data: bytes) -> CircuitRunResult:
        require_bytes(data, "input")
        circuit = self.circuit
        counters = {c.counter_id: CounterState() for c in circuit.counters()}
        reports: List[Report] = []

        enabled: Set[str] = {
            s.ste_id for s in circuit.stes() if s.start is not StartKind.NONE
        }
        always = {
            s.ste_id for s in circuit.stes() if s.start is StartKind.ALL_INPUT
        }
        for offset, symbol in enumerate(data):
            # 1. STE match.
            signals: Dict[str, bool] = {}
            for ste in circuit.stes():
                signals[ste.ste_id] = (
                    ste.ste_id in enabled and ste.symbols.matches(symbol)
                )

            # 2. Counter outputs reflect *last* cycle's latch state for
            #    combinational consumers, then update below.  (AP counters
            #    present their output in the same cycle their target is
            #    reached; we therefore compute counter updates after STE
            #    signals but before gate evaluation.)
            for counter in circuit.counters():
                state = counters[counter.counter_id]
                reset = any(
                    signals.get(source, False)
                    for source in self._reset_inputs.get(counter.counter_id, ())
                )
                count = any(
                    signals.get(source, False)
                    for source in self._count_inputs.get(counter.counter_id, ())
                )
                fired = False
                if reset:
                    state.value = 0
                    state.latched = False
                elif count:
                    if counter.mode is CounterMode.LATCH:
                        if not state.latched:
                            state.value += 1
                            if state.value >= counter.target:
                                state.latched = True
                    elif counter.mode is CounterMode.PULSE:
                        if state.value < counter.target:
                            state.value += 1
                            fired = state.value == counter.target
                    else:  # ROLLOVER
                        state.value += 1
                        if state.value >= counter.target:
                            fired = True
                            state.value = 0
                signals[counter.counter_id] = (
                    state.latched
                    if counter.mode is CounterMode.LATCH
                    else fired
                )

            # 3. Gates, in topological order.
            for gate_id in self._gate_order:
                gate = circuit.gate(gate_id)
                inputs = [
                    signals.get(source, False)
                    for source in circuit.inputs_to(gate_id)
                ]
                if gate.kind is GateKind.AND:
                    signals[gate_id] = bool(inputs) and all(inputs)
                elif gate.kind is GateKind.OR:
                    signals[gate_id] = any(inputs)
                else:  # NOT
                    signals[gate_id] = not inputs[0]

            # 4. Reports from any active reporting element.
            for element_id in circuit.reporting_elements():
                if signals.get(element_id, False):
                    code = self._report_code(element_id)
                    reports.append(Report(offset, element_id, code))

            # 5. Next-cycle STE enables.
            enabled = set(always)
            for source, active in signals.items():
                if active:
                    enabled.update(self._ste_enables.get(source, ()))

        return CircuitRunResult(
            reports,
            {name: state.value for name, state in counters.items()},
        )

    def _report_code(self, element_id: str):
        circuit = self.circuit
        if element_id in self._ste_ids:
            return circuit.ste(element_id).report_code
        if element_id in {g.gate_id for g in circuit.gates()}:
            return circuit.gate(element_id).report_code
        return circuit.counter(element_id).report_code


def simulate_circuit(circuit: CircuitAutomaton, data: bytes) -> CircuitRunResult:
    """One-shot convenience wrapper around :class:`CircuitSimulator`."""
    return CircuitSimulator(circuit).run(data)
