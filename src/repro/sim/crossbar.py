"""Bit-level simulation of the configuration bitstream.

The most literal executable model of the hardware in this library: state
is the per-partition active-state vector; each symbol is processed by

1. reading row ``symbol`` of every partition's STE column image (the
   match vector) and ANDing it with the active-state vector;
2. driving matched boundary sources onto their assigned G-switch input
   wires and evaluating the G1/G4 crossbar enable matrices (wired-OR);
3. evaluating every partition's L-switch on [matched STEs | G1 returns |
   G4 returns] to produce the next active-state vector.

It is deliberately slow (dense numpy crossbar evaluation every cycle) and
exists to prove that the *bitstream itself* — cross-point enables, wire
assignments, column images — encodes the automaton: integration tests
check its reports against the golden interpreter exactly.  Use
:class:`repro.sim.functional.MappedSimulator` for long runs.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.automata.anml import StartKind
from repro.compiler.bitstream import Bitstream
from repro.errors import SimulationError
from repro.sim.golden import Report


class CrossbarLevelSimulator:
    """Executes a compiled :class:`~repro.compiler.bitstream.Bitstream`.

    ``stuck_wires`` injects persistent stuck-at faults on activation
    wires: each ``(partition, slot, value)`` triple pins that slot's
    enable wire to ``value`` every cycle, before the match read — the
    structural twin of the kernel-level crossbar faults in
    :mod:`repro.faults` (a stuck-at-1 wire behaves like an all-input
    start state; a stuck-at-0 wire can never be activated).
    """

    def __init__(self, bitstream: Bitstream, *, stuck_wires=()):
        self.bitstream = bitstream
        mapping = bitstream.mapping
        design = mapping.design
        self.partition_size = design.partition_size
        self.g1_wires = design.g1_wires_per_partition
        self.g4_wires = design.g4_wires_per_partition
        self.per_way = design.partitions_per_way
        self.partition_count = mapping.partition_count

        size = self.partition_size
        self._start_all = np.zeros((self.partition_count, size), dtype=bool)
        self._start_sod = np.zeros((self.partition_count, size), dtype=bool)
        self._reporting = np.zeros((self.partition_count, size), dtype=bool)
        self._ids: List[List[str]] = [
            list(partition.ste_ids) + [""] * (size - len(partition.ste_ids))
            for partition in mapping.partitions
        ]
        for ste in mapping.automaton.stes():
            partition_index, slot = mapping.location[ste.ste_id]
            if ste.start is StartKind.ALL_INPUT:
                self._start_all[partition_index, slot] = True
            elif ste.start is StartKind.START_OF_DATA:
                self._start_sod[partition_index, slot] = True
            if ste.reporting:
                self._reporting[partition_index, slot] = True

        # int32 to avoid uint8 overflow when many inputs share an output.
        self._l_enable = bitstream.l_switch_enable.astype(np.int32)
        self._ste_columns = bitstream.ste_columns.astype(bool)

        self._stuck_zero = np.zeros((self.partition_count, size), dtype=bool)
        self._stuck_one = np.zeros((self.partition_count, size), dtype=bool)
        for partition_index, slot, value in stuck_wires:
            if not 0 <= partition_index < self.partition_count:
                raise SimulationError(
                    f"stuck wire partition {partition_index} out of range"
                )
            if not 0 <= slot < size:
                raise SimulationError(f"stuck wire slot {slot} out of range")
            if value not in (0, 1):
                raise SimulationError(
                    f"stuck wire value must be 0 or 1, got {value}"
                )
            self._stuck_zero[partition_index, slot] = value == 0
            self._stuck_one[partition_index, slot] = value == 1

    def _apply_stuck(self, active: np.ndarray) -> np.ndarray:
        return (active | self._stuck_one) & ~self._stuck_zero

    def run(self, data: bytes) -> List[Report]:
        """Process ``data`` and return the report records."""
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise SimulationError(f"input must be bytes-like, got {type(data)!r}")
        mapping = self.bitstream.mapping
        size = self.partition_size
        g1_wires = self.g1_wires
        g4_wires = self.g4_wires
        per_way = self.per_way
        reports: List[Report] = []

        active = self._apply_stuck(self._start_all | self._start_sod)
        for offset, symbol in enumerate(data):
            # Stage 1 — state match: one row read per partition.
            match_vectors = self._ste_columns[:, symbol, :]
            matched = active & match_vectors

            for partition_index, slot in zip(*np.nonzero(matched & self._reporting)):
                ste_id = self._ids[partition_index][slot]
                ste = mapping.automaton.ste(ste_id)
                reports.append(Report(offset, ste_id, ste.report_code))

            # Stage 2 — global switches: drive assigned wires, evaluate.
            g1_returns = np.zeros((self.partition_count, g1_wires), dtype=bool)
            g4_returns = np.zeros((self.partition_count, g4_wires), dtype=bool)
            if g1_wires:
                for way, enable in self.bitstream.g1_enable.items():
                    inputs = np.zeros(enable.shape[0], dtype=bool)
                    self._drive_wires(inputs, matched, way, "out_g1", g1_wires)
                    outputs = (inputs[:, None] & enable).any(axis=0)
                    self._collect_returns(outputs, g1_returns, way, g1_wires)
            if g4_wires:
                for group, enable in self.bitstream.g4_enable.items():
                    inputs = np.zeros(enable.shape[0], dtype=bool)
                    for way_slot in range(4):
                        way = group * 4 + way_slot
                        self._drive_wires(
                            inputs, matched, way, "out_g4", g4_wires,
                            base=way_slot * per_way * g4_wires,
                        )
                    outputs = (inputs[:, None] & enable).any(axis=0)
                    for way_slot in range(4):
                        way = group * 4 + way_slot
                        self._collect_returns(
                            outputs, g4_returns, way, g4_wires,
                            base=way_slot * per_way * g4_wires,
                        )

            # Stage 3 — local switches: wired-OR over all inputs.
            l_inputs = np.concatenate([matched, g1_returns, g4_returns], axis=1)
            active = (
                np.einsum("pi,pio->po", l_inputs.astype(np.int32), self._l_enable)
                > 0
            )
            active |= self._start_all
            active = self._apply_stuck(active)
        return reports

    def _drive_wires(
        self,
        inputs: np.ndarray,
        matched: np.ndarray,
        way: int,
        direction: str,
        wires: int,
        base: int = 0,
    ):
        """Put each matched boundary source onto its assigned input port."""
        mapping = self.bitstream.mapping
        for partition in mapping.partitions:
            if partition.way != way:
                continue
            assignment = getattr(self.bitstream.wires[partition.index], direction)
            for ste_id, wire in assignment.items():
                slot = mapping.location[ste_id][1]
                if matched[partition.index, slot]:
                    port = base + (partition.index % self.per_way) * wires + wire
                    inputs[port] = True

    def _collect_returns(
        self,
        outputs: np.ndarray,
        returns: np.ndarray,
        way: int,
        wires: int,
        base: int = 0,
    ):
        """Deliver G-switch outputs to each destination partition's inputs."""
        mapping = self.bitstream.mapping
        for partition in mapping.partitions:
            if partition.way != way:
                continue
            start = base + (partition.index % self.per_way) * wires
            returns[partition.index] |= outputs[start : start + wires]
