"""Functional simulation of a *mapped* Cache Automaton.

Where :mod:`repro.sim.golden` interprets the automaton abstractly, this
simulator executes the compiled :class:`~repro.compiler.mapping.Mapping`:
states live at (partition, slot) locations, matches are per-partition
match-vector reads, and successor activation travels through L/G switch
paths.  Two things fall out of that fidelity:

* **equivalence evidence** — its reports must equal the golden
  interpreter's on every input (asserted in the integration tests);
* the :class:`~repro.core.energy.ActivityProfile` driving Figure 9 —
  per-cycle active-partition counts (a partition is *accessed* whenever
  its active-state vector is non-zero; idle partitions are clock-gated
  by the wired-OR disabling circuit) and dynamic G-switch crossings.

States are laid out so each partition occupies one contiguous 256-bit
span of a global bitmask; per-partition reductions are then byte-level
numpy operations, keeping multi-megabyte runs tractable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.automata.anml import StartKind
from repro.compiler.mapping import Mapping
from repro.core.energy import ActivityProfile
from repro.errors import SimulationError
from repro.sim.golden import Checkpoint, Report, RunStats

#: Output buffer geometry (Section 2.8): 64 entries, CPU interrupt on full.
OUTPUT_BUFFER_ENTRIES = 64


@dataclass(frozen=True)
class OutputRecord:
    """One CBOX output-buffer entry (Section 2.8).

    "An output reporting event creates a new entry in the output buffer
    consisting of active state mask, partition ID, input symbol, and
    input symbol counter."
    """

    partition: int
    #: Matched-state mask of the partition (bit = slot) at report time.
    active_state_mask: int
    symbol: int
    #: Global input-symbol counter (= report offset).
    symbol_counter: int


@dataclass
class OutputBufferModel:
    """Models the CBOX output buffer: entries consumed per report event,
    interrupts raised whenever it fills (Section 2.8)."""

    entries: int = OUTPUT_BUFFER_ENTRIES
    events: int = 0
    interrupts: int = 0

    def record(self, new_events: int):
        self.events += new_events
        while self.events >= self.entries:
            self.interrupts += 1
            self.events -= self.entries


@dataclass
class MappedRunResult:
    reports: List[Report]
    stats: RunStats
    profile: ActivityProfile
    output_buffer: OutputBufferModel
    #: Resume state after the run (Section 2.9 suspend/resume).
    checkpoint: Optional[Checkpoint] = None
    #: Per-partition activation counts (only when ``collect_partition_stats``
    #: was requested): how many cycles each partition's array was accessed.
    partition_activation_counts: Optional[np.ndarray] = None
    #: CBOX output-buffer entries (only when ``collect_records`` was
    #: requested): one per (reporting partition, cycle) event.
    output_records: List[OutputRecord] = field(default_factory=list)

    def report_offsets(self) -> List[int]:
        return sorted({report.offset for report in self.reports})


class MappedSimulator:
    """Cycle-functional simulator over a compiled mapping."""

    def __init__(self, mapping: Mapping):
        self.mapping = mapping
        design = mapping.design
        partition_size = design.partition_size
        partition_count = mapping.partition_count

        # Global state order: partition-major, slot-minor; each partition
        # padded to a full partition_size span so numpy can reduce spans.
        self._span_bits = partition_size
        total_bits = partition_count * partition_size
        self._span_bytes = (partition_size + 7) // 8
        if partition_size % 8:
            raise SimulationError("partition size must be byte-aligned")
        self._mask_bytes = total_bits // 8

        self._ids: List[str] = [""] * total_bits
        bit_of: Dict[str, int] = {}
        for partition in mapping.partitions:
            base = partition.index * partition_size
            for slot, ste_id in enumerate(partition.ste_ids):
                bit_of[ste_id] = base + slot
                self._ids[base + slot] = ste_id
        self._bit_of = bit_of

        automaton = mapping.automaton
        self._successor_mask = [0] * total_bits
        g1_sources = 0
        g4_sources = 0
        for source, target in automaton.edges():
            self._successor_mask[bit_of[source]] |= 1 << bit_of[target]
            kind = mapping.edge_kind(source, target)
            if kind == "g1":
                g1_sources |= 1 << bit_of[source]
            elif kind == "g4":
                g4_sources |= 1 << bit_of[source]
        self._g1_sources = g1_sources
        self._g4_sources = g4_sources

        self._start_all = 0
        self._start_sod = 0
        self._report_mask = 0
        for ste in automaton.stes():
            bit = 1 << bit_of[ste.ste_id]
            if ste.start is StartKind.ALL_INPUT:
                self._start_all |= bit
            elif ste.start is StartKind.START_OF_DATA:
                self._start_sod |= bit
            if ste.reporting:
                self._report_mask |= bit

        self._match_table = [0] * 256
        for ste in automaton.stes():
            bit = 1 << bit_of[ste.ste_id]
            for symbol in ste.symbols:
                self._match_table[symbol] |= bit

        # Way id per partition, for per-way G-switch activation counting.
        self._partition_ways = np.array(
            [partition.way for partition in mapping.partitions], dtype=np.int64
        )
        self._way_count = int(self._partition_ways.max()) + 1 if partition_count else 0

        # Successor-propagation memoisation (see repro.sim.golden).
        block_count = (total_bits + 15) // 16
        self._block_bytes = block_count * 2
        self._block_cache: List[Dict[int, int]] = [{} for _ in range(block_count)]

    # -- helpers ---------------------------------------------------------------

    def _block_successors(self, block: int, pattern: int) -> int:
        cache = self._block_cache[block]
        combined = cache.get(pattern)
        if combined is None:
            combined = 0
            base = block * 16
            remaining = pattern
            while remaining:
                low_bit = remaining & -remaining
                combined |= self._successor_mask[base + low_bit.bit_length() - 1]
                remaining ^= low_bit
            cache[pattern] = combined
        return combined

    def _propagate(self, matched: int) -> int:
        if not matched:
            return 0
        blocks = np.frombuffer(
            matched.to_bytes(self._block_bytes, "little"), dtype=np.uint16
        )
        enabled = 0
        for block in np.flatnonzero(blocks):
            enabled |= self._block_successors(int(block), int(blocks[block]))
        return enabled

    def _partition_activity(self, mask: int) -> np.ndarray:
        """Boolean per-partition 'has any set bit in its span'."""
        raw = np.frombuffer(
            mask.to_bytes(self._mask_bytes, "little"), dtype=np.uint8
        )
        return raw.reshape(-1, self._span_bytes).any(axis=1)

    # -- simulation ---------------------------------------------------------------

    def run(
        self,
        data: bytes,
        *,
        collect_reports: bool = True,
        resume: Optional[Checkpoint] = None,
        collect_partition_stats: bool = False,
        collect_records: bool = False,
    ) -> MappedRunResult:
        """Process ``data``, returning reports, stats, and activity profile.

        ``resume`` continues a suspended stream from a previous run's
        ``checkpoint`` (the active-state vector plus the global symbol
        counter, per Section 2.9); report offsets stay global.

        ``collect_partition_stats`` additionally accumulates per-partition
        activation counts (for utilisation heat maps / hot-spot analysis);
        ``collect_records`` materialises the Section 2.8 output-buffer
        entries (partition id + active-state mask + symbol + counter).
        """
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise SimulationError(f"input must be bytes-like, got {type(data)!r}")
        match_table = self._match_table
        start_all = self._start_all
        report_mask = self._report_mask
        g1_sources = self._g1_sources
        g4_sources = self._g4_sources
        partition_ways = self._partition_ways
        way_bins = self._way_count + 1  # bincount needs minlength

        reports: List[Report] = []
        stats = RunStats()
        profile = ActivityProfile()
        buffer_model = OutputBufferModel()
        partition_counts = (
            np.zeros(self.mapping.partition_count, dtype=np.int64)
            if collect_partition_stats
            else None
        )
        output_records: List[OutputRecord] = []
        span_mask = (1 << self._span_bits) - 1

        if resume is None:
            base_offset = 0
            enabled_from_matches = 0
            sod = self._start_sod
        else:
            base_offset = resume.symbols_processed
            enabled_from_matches = resume.active_state_vector
            sod = self._start_sod if resume.start_of_data_pending else 0
        for offset, symbol in enumerate(data, start=base_offset):
            enabled = enabled_from_matches | start_all | sod
            sod = 0
            # State-match phase: every partition with a non-zero active
            # state vector performs an array read + L-switch access.
            if enabled:
                active_now = self._partition_activity(enabled)
                profile.partition_activations += int(active_now.sum())
                if partition_counts is not None:
                    partition_counts += active_now
            matched = enabled & match_table[symbol]
            stats.total_matched_states += matched.bit_count()

            # State-transition phase: boundary-crossing matched sources
            # drive the global switches.
            g1_active = matched & g1_sources
            if g1_active:
                profile.g1_crossings += g1_active.bit_count()
                active_partitions = self._partition_activity(g1_active)
                ways_hit = np.bincount(
                    partition_ways[active_partitions], minlength=way_bins
                )
                profile.g1_switch_activations += int((ways_hit > 0).sum())
            g4_active = matched & g4_sources
            if g4_active:
                profile.g4_crossings += g4_active.bit_count()
                active_partitions = self._partition_activity(g4_active)
                groups_hit = np.bincount(
                    partition_ways[active_partitions] // 4, minlength=way_bins
                )
                profile.g4_switch_activations += int((groups_hit > 0).sum())

            reporting = matched & report_mask
            if reporting:
                count = reporting.bit_count()
                profile.reports += count
                buffer_model.record(count)
                if collect_reports:
                    self._emit_reports(reporting, offset, reports)
                if collect_records:
                    for partition in np.flatnonzero(
                        self._partition_activity(reporting)
                    ):
                        partition = int(partition)
                        mask = (
                            matched >> (partition * self._span_bits)
                        ) & span_mask
                        output_records.append(
                            OutputRecord(partition, mask, symbol, offset)
                        )

            enabled_from_matches = self._propagate(matched)
        stats.symbols_processed = len(data)
        profile.symbols = len(data)
        checkpoint = Checkpoint(
            symbols_processed=base_offset + len(data),
            active_state_vector=enabled_from_matches,
            start_of_data_pending=bool(sod),
        )
        return MappedRunResult(
            reports, stats, profile, buffer_model, checkpoint,
            partition_counts, output_records,
        )

    def _emit_reports(self, reporting: int, offset: int, reports: List[Report]):
        while reporting:
            low_bit = reporting & -reporting
            ste = self.mapping.automaton.ste(self._ids[low_bit.bit_length() - 1])
            reports.append(Report(offset, ste.ste_id, ste.report_code))
            reporting ^= low_bit


def simulate_mapping(
    mapping: Mapping, data: bytes, **kwargs
) -> MappedRunResult:
    """One-shot convenience wrapper around :class:`MappedSimulator`."""
    return MappedSimulator(mapping).run(data, **kwargs)
