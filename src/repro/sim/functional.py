"""Functional simulation of a *mapped* Cache Automaton.

Where :mod:`repro.sim.golden` interprets the automaton abstractly, this
simulator executes the compiled :class:`~repro.compiler.mapping.Mapping`:
states live at (partition, slot) locations, matches are per-partition
match-vector reads, and successor activation travels through L/G switch
paths.  Two things fall out of that fidelity:

* **equivalence evidence** — its reports must equal the golden
  interpreter's on every input (asserted in the integration tests);
* the :class:`~repro.core.energy.ActivityProfile` driving Figure 9 —
  per-cycle active-partition counts (a partition is *accessed* whenever
  its active-state vector is non-zero; idle partitions are clock-gated
  by the wired-OR disabling circuit) and dynamic G-switch crossings.

States are laid out so each partition occupies one contiguous 256-bit
span of a packed ``uint64`` state vector; execution runs on the shared
packed-bitset kernel (:mod:`repro.sim.kernel`) and all per-partition
reductions — activity, G-switch fan-in, report extraction — are computed
batchwise over whole chunks of cycle history with
``reshape(-1, span_words).any(axis=-1)``-style numpy operations, keeping
multi-megabyte runs tractable while staying bit-for-bit equivalent to
the scalar reference semantics.

:meth:`MappedSimulator.run_many` additionally batches several independent
input streams through one kernel invocation (the Section 6 multi-stream
scenario): per-cycle state for all streams advances through shared
``(streams, words)`` matrix operations and one shared propagation table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.automata.anml import StartKind
from repro.backends.validation import require_resume_count
from repro.compiler.mapping import Mapping
from repro.core.energy import ActivityProfile
from repro.errors import SimulationError
from repro.sim.golden import Checkpoint, Report, RunStats
from repro.sim.kernel import (
    CHUNK_SYMBOLS,
    BitsetKernel,
    as_symbols,
    popcount_rows,
)

#: Output buffer geometry (Section 2.8): 64 entries, CPU interrupt on full.
OUTPUT_BUFFER_ENTRIES = 64


@dataclass(frozen=True)
class OutputRecord:
    """One CBOX output-buffer entry (Section 2.8).

    "An output reporting event creates a new entry in the output buffer
    consisting of active state mask, partition ID, input symbol, and
    input symbol counter."
    """

    partition: int
    #: Matched-state mask of the partition (bit = slot) at report time.
    active_state_mask: int
    symbol: int
    #: Global input-symbol counter (= report offset).
    symbol_counter: int


@dataclass
class OutputBufferModel:
    """Models the CBOX output buffer: entries consumed per report event,
    interrupts raised whenever it fills (Section 2.8)."""

    entries: int = OUTPUT_BUFFER_ENTRIES
    events: int = 0
    interrupts: int = 0

    def record(self, new_events: int):
        self.events += new_events
        if self.events >= self.entries:
            overflow, self.events = divmod(self.events, self.entries)
            self.interrupts += overflow


@dataclass
class MappedRunResult:
    reports: List[Report]
    stats: RunStats
    profile: ActivityProfile
    output_buffer: OutputBufferModel
    #: Resume state after the run (Section 2.9 suspend/resume).
    checkpoint: Optional[Checkpoint] = None
    #: Per-partition activation counts (only when ``collect_partition_stats``
    #: was requested): how many cycles each partition's array was accessed.
    partition_activation_counts: Optional[np.ndarray] = None
    #: CBOX output-buffer entries (only when ``collect_records`` was
    #: requested): one per (reporting partition, cycle) event.
    output_records: List[OutputRecord] = field(default_factory=list)

    def report_offsets(self) -> List[int]:
        return sorted({report.offset for report in self.reports})


class _RunAccumulator:
    """Batchwise statistics for one stream: consumes chunk histories.

    Each :meth:`add` call folds one chunk's packed matched/enabled cycle
    history into the run's stats, activity profile, output-buffer model,
    and (optionally) reports, per-partition counts, and output records —
    reproducing exactly what the scalar per-symbol loop accumulated.
    """

    def __init__(
        self,
        simulator: "MappedSimulator",
        *,
        collect_reports: bool,
        collect_partition_stats: bool,
        collect_records: bool,
        collect_cycle_stats: bool,
    ):
        self._simulator = simulator
        self.collect_reports = collect_reports
        self.collect_records = collect_records
        self.collect_cycle_stats = collect_cycle_stats
        self.stats = RunStats()
        self.profile = ActivityProfile()
        self.buffer_model = OutputBufferModel()
        self.reports: List[Report] = []
        self.output_records: List[OutputRecord] = []
        self.partition_counts = (
            np.zeros(simulator.mapping.partition_count, dtype=np.int64)
            if collect_partition_stats
            else None
        )

    def add(
        self,
        sym: np.ndarray,
        matched_rows: np.ndarray,
        enabled_rows: np.ndarray,
        base_offset: int,
    ):
        simulator = self._simulator
        counts = popcount_rows(matched_rows)
        self.stats.total_matched_states += int(counts.sum())
        if self.collect_cycle_stats:
            self.stats.matched_per_cycle.extend(counts.tolist())
        if simulator.mapping.partition_count == 0:
            return

        activity = simulator._partition_any(enabled_rows)
        partition_activations = int(np.count_nonzero(activity))
        if self.partition_counts is not None:
            self.partition_counts += activity.sum(axis=0, dtype=np.int64)

        g1_crossings = g4_crossings = 0
        g1_switches = g4_switches = 0
        g1_rows = matched_rows & simulator._g1_row
        if g1_rows.any():
            g1_crossings = int(popcount_rows(g1_rows).sum())
            g1_switches = simulator._switches_hit(g1_rows, simulator._way_starts)
        g4_rows = matched_rows & simulator._g4_row
        if g4_rows.any():
            g4_crossings = int(popcount_rows(g4_rows).sum())
            g4_switches = simulator._switches_hit(g4_rows, simulator._domain_starts)

        report_count = 0
        reporting_rows = matched_rows & simulator._kernel.report_row
        report_counts = popcount_rows(reporting_rows)
        report_cycles = np.flatnonzero(report_counts)
        if report_cycles.size:
            report_count = int(report_counts.sum())
            for cycle in report_cycles:
                cycle = int(cycle)
                offset = base_offset + cycle
                self.buffer_model.record(int(report_counts[cycle]))
                if self.collect_reports:
                    simulator._emit_reports(
                        reporting_rows[cycle], offset, self.reports
                    )
                if self.collect_records:
                    simulator._emit_records(
                        reporting_rows[cycle],
                        matched_rows[cycle],
                        int(sym[cycle]),
                        offset,
                        self.output_records,
                    )
        self.profile.add_activity(
            partition_activations=partition_activations,
            g1_crossings=g1_crossings,
            g4_crossings=g4_crossings,
            g1_switch_activations=g1_switches,
            g4_switch_activations=g4_switches,
            reports=report_count,
        )

    def finish(self, symbols: int, checkpoint: Checkpoint) -> MappedRunResult:
        self.stats.symbols_processed = symbols
        self.profile.add_activity(symbols=symbols)
        return MappedRunResult(
            self.reports, self.stats, self.profile, self.buffer_model,
            checkpoint, self.partition_counts, self.output_records,
        )


class MappedSimulator:
    """Cycle-functional simulator over a compiled mapping."""

    def __init__(self, mapping: Mapping):
        self.mapping = mapping
        partition_size = mapping.design.partition_size
        partition_count = mapping.partition_count

        # Global state order: partition-major, slot-minor; each partition
        # padded to a full partition_size span so numpy can reduce spans.
        self._init_span_geometry()
        total_bits = partition_count * partition_size

        self._ids: Optional[List[str]] = [""] * total_bits
        bit_of = {}
        for partition in mapping.partitions:
            base = partition.index * partition_size
            for slot, ste_id in enumerate(partition.ste_ids):
                bit_of[ste_id] = base + slot
                self._ids[base + slot] = ste_id
        self._bit_of = bit_of

        automaton = mapping.automaton
        successor_masks = [0] * total_bits
        g1_sources = 0
        g4_sources = 0
        for source, target in automaton.edges():
            successor_masks[bit_of[source]] |= 1 << bit_of[target]
            kind = mapping.edge_kind(source, target)
            if kind == "g1":
                g1_sources |= 1 << bit_of[source]
            elif kind == "g4":
                g4_sources |= 1 << bit_of[source]

        start_all = 0
        start_sod = 0
        report_mask = 0
        match_table = [0] * 256
        for ste in automaton.stes():
            bit = 1 << bit_of[ste.ste_id]
            if ste.start is StartKind.ALL_INPUT:
                start_all |= bit
            elif ste.start is StartKind.START_OF_DATA:
                start_sod |= bit
            if ste.reporting:
                report_mask |= bit
            for symbol in ste.symbols:
                match_table[symbol] |= bit

        self._kernel = BitsetKernel(
            total_bits, successor_masks, match_table,
            start_all, start_sod, report_mask,
        )
        self._g1_row = self._kernel.pack(g1_sources)
        self._g1_row.setflags(write=False)
        self._g4_row = self._kernel.pack(g4_sources)
        self._g4_row.setflags(write=False)
        self._init_way_groups()

    def _init_span_geometry(self):
        design = self.mapping.design
        partition_size = design.partition_size
        self._span_bits = partition_size
        self._span_bytes = (partition_size + 7) // 8
        if partition_size % 8:
            raise SimulationError("partition size must be byte-aligned")
        self._span_words = partition_size // 64 if partition_size % 64 == 0 else 0
        self._mask_bytes = self.mapping.partition_count * partition_size // 8

    def _init_way_groups(self):
        # Way id per partition, for per-way G-switch activation counting;
        # group boundaries for the batched "distinct ways hit per cycle"
        # reduction: partitions sorted (stably) by way / by G4 domain.
        self._partition_ways = np.array(
            [partition.way for partition in self.mapping.partitions],
            dtype=np.int64,
        )
        if self.mapping.partition_count:
            order = np.argsort(self._partition_ways, kind="stable")
            self._way_order = order
            sorted_ways = self._partition_ways[order]
            self._way_starts = np.flatnonzero(
                np.r_[True, np.diff(sorted_ways) != 0]
            )
            sorted_domains = sorted_ways // 4
            self._domain_starts = np.flatnonzero(
                np.r_[True, np.diff(sorted_domains) != 0]
            )
        else:
            self._way_order = np.zeros(0, dtype=np.int64)
            self._way_starts = np.zeros(0, dtype=np.int64)
            self._domain_starts = np.zeros(0, dtype=np.int64)

    @property
    def kernel(self) -> BitsetKernel:
        """The packed-bitset kernel executing this mapping (read-mostly;
        used by the fault-injection harness in :mod:`repro.faults`)."""
        return self._kernel

    def cache_info(self) -> dict:
        """Hit/miss/flush counters of the kernel's memoisation layers
        (see :meth:`repro.sim.kernel.BitsetKernel.cache_info`)."""
        return self._kernel.cache_info()

    # -- packed-table round-trip ------------------------------------------

    def packed_tables(self) -> dict:
        """All packed tables needed to rebuild this simulator without
        touching the automaton again (see :meth:`from_cached`)."""
        tables = dict(self._kernel.packed_tables())
        tables["g1_row"] = self._g1_row
        tables["g4_row"] = self._g4_row
        return tables

    @classmethod
    def from_cached(cls, mapping: Mapping, tables: dict) -> "MappedSimulator":
        """Rebuild a simulator from :meth:`packed_tables` output.

        Skips every per-state Python loop of regular construction; the
        bit -> STE id table (needed only to materialise report records)
        is built lazily on the first report.
        """
        self = cls.__new__(cls)
        self.mapping = mapping
        self._init_span_geometry()
        self._ids = None
        self._bit_of = None
        kernel_tables = {
            name: array
            for name, array in tables.items()
            if name not in ("g1_row", "g4_row")
        }
        self._kernel = BitsetKernel.from_packed(kernel_tables)
        self._g1_row = np.ascontiguousarray(tables["g1_row"])
        self._g1_row.setflags(write=False)
        self._g4_row = np.ascontiguousarray(tables["g4_row"])
        self._g4_row.setflags(write=False)
        self._init_way_groups()
        return self

    def _bit_ids(self) -> List[str]:
        """bit index -> STE id (lazy for cache-rebuilt simulators)."""
        if self._ids is None:
            partition_size = self.mapping.design.partition_size
            ids = [""] * (self.mapping.partition_count * partition_size)
            for partition in self.mapping.partitions:
                base = partition.index * partition_size
                for slot, ste_id in enumerate(partition.ste_ids):
                    ids[base + slot] = ste_id
            self._ids = ids
        return self._ids

    # -- packed-history helpers -------------------------------------------

    def _partition_any(self, rows: np.ndarray) -> np.ndarray:
        """Boolean (cycles, partitions) 'any set bit in the span' matrix."""
        cycles = rows.shape[0]
        partitions = self.mapping.partition_count
        if self._span_words:
            return rows.reshape(cycles, partitions, self._span_words).any(axis=2)
        packed_bytes = np.ascontiguousarray(rows).view(np.uint8)
        return (
            packed_bytes[:, : self._mask_bytes]
            .reshape(cycles, partitions, self._span_bytes)
            .any(axis=2)
        )

    def _switches_hit(self, rows: np.ndarray, group_starts: np.ndarray) -> int:
        """Sum over cycles of switch groups with >= 1 active partition."""
        activity = self._partition_any(rows)[:, self._way_order]
        hits = np.logical_or.reduceat(activity, group_starts, axis=1)
        return int(np.count_nonzero(hits))

    def _emit_reports(self, row: np.ndarray, offset: int, reports: List[Report]):
        automaton = self.mapping.automaton
        ids = self._bit_ids()
        for bit in self._kernel.bit_indices(row):
            ste = automaton.ste(ids[bit])
            reports.append(Report(offset, ste.ste_id, ste.report_code))

    def _emit_records(
        self,
        reporting_row: np.ndarray,
        matched_row: np.ndarray,
        symbol: int,
        offset: int,
        output_records: List[OutputRecord],
    ):
        matched_bytes = np.ascontiguousarray(matched_row).tobytes()
        active = self._partition_any(reporting_row.reshape(1, -1))[0]
        for partition in np.flatnonzero(active):
            partition = int(partition)
            span = matched_bytes[
                partition * self._span_bytes : (partition + 1) * self._span_bytes
            ]
            output_records.append(
                OutputRecord(
                    partition, int.from_bytes(span, "little"), symbol, offset
                )
            )

    def _initial_cursor(self, resume: Optional[Checkpoint]):
        kernel = self._kernel
        if resume is None:
            return kernel.pack(0), False, kernel.has_sod, 0
        prev = kernel.pack(resume.active_state_vector)
        sod = kernel.has_sod and resume.start_of_data_pending
        return prev, bool(prev.any()), sod, resume.symbols_processed

    # -- simulation --------------------------------------------------------

    def run(
        self,
        data: bytes,
        *,
        collect_reports: bool = True,
        resume: Optional[Checkpoint] = None,
        collect_partition_stats: bool = False,
        collect_records: bool = False,
        collect_cycle_stats: bool = False,
    ) -> MappedRunResult:
        """Process ``data``, returning reports, stats, and activity profile.

        ``resume`` continues a suspended stream from a previous run's
        ``checkpoint`` (the active-state vector plus the global symbol
        counter, per Section 2.9); report offsets stay global.

        ``collect_partition_stats`` additionally accumulates per-partition
        activation counts (for utilisation heat maps / hot-spot analysis);
        ``collect_records`` materialises the Section 2.8 output-buffer
        entries (partition id + active-state mask + symbol + counter);
        ``collect_cycle_stats`` keeps the per-cycle matched-state counts,
        mirroring the golden simulator's flag.
        """
        symbols = as_symbols(data)
        kernel = self._kernel
        accumulator = _RunAccumulator(
            self,
            collect_reports=collect_reports,
            collect_partition_stats=collect_partition_stats,
            collect_records=collect_records,
            collect_cycle_stats=collect_cycle_stats,
        )
        prev, prev_nonzero, sod, base_offset = self._initial_cursor(resume)
        for start in range(0, len(symbols), CHUNK_SYMBOLS):
            sym = symbols[start : start + CHUNK_SYMBOLS]
            matched_rows = kernel.match_matrix[sym]
            enabled_rows = np.empty((len(sym), kernel.words), dtype=np.uint64)
            prev, prev_nonzero, sod = kernel.run_chunk(
                sym, matched_rows, enabled_rows, prev, prev_nonzero, sod
            )
            accumulator.add(sym, matched_rows, enabled_rows, base_offset + start)
        checkpoint = Checkpoint(
            symbols_processed=base_offset + len(symbols),
            active_state_vector=kernel.unpack(prev),
            start_of_data_pending=bool(sod),
        )
        return accumulator.finish(len(symbols), checkpoint)

    def run_many(
        self,
        streams: Sequence[bytes],
        *,
        resumes: Optional[Sequence[Optional[Checkpoint]]] = None,
        collect_reports: bool = True,
        collect_partition_stats: bool = False,
        collect_records: bool = False,
        collect_cycle_stats: bool = False,
    ) -> List[MappedRunResult]:
        """Batch several independent streams through one shared kernel.

        This is the Section 6 multi-stream scenario: every stream scans
        the same compiled automaton, so they share one packed kernel —
        the match matrix, the memoised propagation table, and the idle
        fast-path tables all warm up once and serve the whole batch (a
        propagation pattern any stream has visited is a dictionary hit
        for all of them).  Each stream then advances through the same
        chunked hot loop as :meth:`run`, so per-stream throughput matches
        the solo path and results stay bit-for-bit identical to running
        each stream through :meth:`run` on its own.  An earlier revision
        advanced all streams in cycle lockstep through ``(streams,
        words)`` matrix rows; that paid 3-D slicing overhead every cycle,
        disabled the idle fast path (all streams are rarely idle
        *simultaneously*), and amortised nothing the shared propagation
        table did not already amortise — aggregate throughput trailed the
        solo path by ~20%.  ``resumes`` optionally supplies one
        checkpoint (or ``None``) per stream.
        """
        buffers = [as_symbols(stream) for stream in streams]
        resumes = require_resume_count(resumes, len(buffers))
        kernel = self._kernel
        flags = dict(
            collect_reports=collect_reports,
            collect_partition_stats=collect_partition_stats,
            collect_records=collect_records,
            collect_cycle_stats=collect_cycle_stats,
        )
        results: List[MappedRunResult] = []
        for index, symbols in enumerate(buffers):
            accumulator = _RunAccumulator(self, **flags)
            prev, prev_nonzero, sod, base_offset = self._initial_cursor(
                resumes[index]
            )
            for start in range(0, len(symbols), CHUNK_SYMBOLS):
                sym = symbols[start : start + CHUNK_SYMBOLS]
                matched_rows = kernel.match_matrix[sym]
                enabled_rows = np.empty(
                    (len(sym), kernel.words), dtype=np.uint64
                )
                prev, prev_nonzero, sod = kernel.run_chunk(
                    sym, matched_rows, enabled_rows, prev, prev_nonzero, sod
                )
                accumulator.add(
                    sym, matched_rows, enabled_rows, base_offset + start
                )
            checkpoint = Checkpoint(
                symbols_processed=base_offset + len(symbols),
                active_state_vector=kernel.unpack(prev),
                start_of_data_pending=bool(sod),
            )
            results.append(accumulator.finish(len(symbols), checkpoint))
        return results

    def _partition_activity(self, mask: int) -> np.ndarray:
        """Boolean per-partition 'has any set bit in its span' (one vector)."""
        return self._partition_any(self._kernel.pack(mask).reshape(1, -1))[0]


def simulate_mapping(
    mapping: Mapping, data: bytes, **kwargs
) -> MappedRunResult:
    """One-shot convenience wrapper around :class:`MappedSimulator`."""
    return MappedSimulator(mapping).run(data, **kwargs)
