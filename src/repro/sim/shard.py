"""Process-parallel sharded scanning over shared kernel/DFA tables.

The Section 6 multi-stream scenario scales past one core by sharding
independent input streams across a process pool.  The expensive state —
the packed kernel tables and the lazy-DFA transition tables — is
published *once* through :mod:`multiprocessing.shared_memory` as a
single block; each worker maps it zero-copy, rebuilds a
:class:`~repro.sim.kernel.BitsetKernel` via ``from_packed`` and a
warm-seeded :class:`~repro.sim.lazydfa.LazyDfaKernel`, and scans its
shard of streams.  Results carry the original stream indices so the
caller reassembles them in deterministic submission order — the worker
count never changes what a scan returns, only how fast it returns.

Pool policy mirrors :mod:`repro.compiler.mapping`: only a *pool-level*
failure (``OSError`` from process creation, ``BrokenProcessPool``)
degrades to the caller's serial path, with a
:class:`~repro.errors.DegradedModeWarning`; an exception raised inside a
worker (bad input, corrupt tables) propagates — retrying it serially
would mask it or fail identically, twice as slowly.

Worker count comes from ``jobs=`` or the ``REPRO_SCAN_JOBS`` environment
variable, defaulting to the CPU count (:func:`resolve_scan_jobs`).
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.automata.stride import StrideAlphabet
from repro.backends.validation import as_symbols
from repro.errors import DegradedModeWarning
from repro.sim.kernel import BitsetKernel
from repro.sim.lazydfa import LazyDfaKernel

SCAN_JOBS_ENV = "REPRO_SCAN_JOBS"

#: One stream's raw scan outcome, before report materialisation:
#: (events as (offset, count, reporting_row_bytes), report_total,
#:  final_state_vector_int, sod_pending, symbols_scanned).
RawScanResult = Tuple[List[Tuple[int, int, bytes]], int, int, bool, int]

#: One stream's pickled work item: (index, data, resume-tuple-or-None).
_WorkItem = Tuple[int, bytes, Optional[Tuple[int, int, bool]]]


def resolve_scan_jobs(jobs: Union[int, str, None] = None) -> int:
    """Worker count for sharded scanning.

    ``jobs`` may be an int, a numeric string, or ``None``/"auto" — the
    latter consults ``REPRO_SCAN_JOBS`` and falls back to the CPU
    count.  The result is always >= 1 (1 means scan serially).
    """
    if jobs is None or jobs == "auto":
        jobs = os.environ.get(SCAN_JOBS_ENV) or (os.cpu_count() or 1)
    return max(1, int(jobs))


class SharedTables:
    """A dict of numpy arrays published as one shared-memory block.

    ``meta`` is the picklable handle workers pass to
    :func:`attach_tables`: the block name plus per-array (name, dtype,
    shape, byte offset) entries.  The creator must :meth:`close` when
    every consumer is done (the pool has exited) — use the instance as
    a context manager so the block is released on *every* exit path,
    including a pool that died before doing any work.  :meth:`close` is
    idempotent and tolerates a block someone else already unlinked, so
    belt-and-braces cleanup in error paths cannot raise over the
    original failure.
    """

    def __init__(self, tables: Dict[str, np.ndarray]):
        entries = []
        arrays = []
        offset = 0
        for name, array in tables.items():
            array = np.asarray(array)
            if not array.flags.c_contiguous:
                # NB: not ascontiguousarray — that promotes 0-d to (1,).
                array = np.ascontiguousarray(array)
            entries.append((name, array.dtype.str, array.shape, offset))
            arrays.append(array)
            # Keep every region 8-byte aligned for the uint64 tables.
            offset += (array.nbytes + 7) & ~7
        self._closed = True  # nothing to release until the block exists
        self._shm = shared_memory.SharedMemory(create=True, size=max(1, offset))
        self._closed = False
        try:
            for (name, dtype, shape, start), array in zip(entries, arrays):
                view = np.ndarray(
                    shape, dtype=dtype, buffer=self._shm.buf, offset=start
                )
                view[...] = array
                del view
            self.meta = (self._shm.name, tuple(entries))
        except BaseException:
            # Never leak the block when population fails half-way.
            self.close()
            raise

    def __enter__(self) -> "SharedTables":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        finally:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


def attach_tables(meta) -> Tuple[shared_memory.SharedMemory, Dict[str, np.ndarray]]:
    """Map a :class:`SharedTables` block; returns (handle, array views).

    The views alias the mapping — the caller must drop every view (and
    everything built on them) before closing the handle.
    """
    name, entries = meta
    shm = shared_memory.SharedMemory(name=name)
    tables = {
        entry_name: np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=start)
        for entry_name, dtype, shape, start in entries
    }
    return shm, tables


def _scan_one(
    kernel: BitsetKernel,
    dfa: LazyDfaKernel,
    data: bytes,
    resume: Optional[Tuple[int, int, bool]],
    collect_events: bool,
) -> RawScanResult:
    """Scan one stream on a worker-local kernel/DFA pair."""
    if resume is None:
        prev = kernel.pack(0)
        sod = kernel.has_sod
    else:
        _, vector, pending = resume
        prev = kernel.pack(vector)
        sod = kernel.has_sod and pending
    symbols = as_symbols(data)
    events, total, final_row, sod = dfa.scan(
        symbols, prev=prev, sod=sod, collect_events=collect_events
    )
    raw_events = []
    for event_offset, event_id in events:
        count, rep_bytes = dfa.event(event_id)
        raw_events.append((event_offset, count, rep_bytes))
    return raw_events, total, kernel.unpack(final_row), bool(sod), len(symbols)


def _scan_shard_worker(
    payload,
) -> Tuple[List[Tuple[int, RawScanResult]], Dict[str, int]]:
    """Scan one shard of streams against the shared tables.

    Top-level so the function pickles; rebuilds the kernel zero-copy
    from the shared block, seeds the lazy DFA from the parent's warm
    transition tables, and returns (original index, raw result) pairs
    plus the worker DFA's :meth:`~LazyDfaKernel.cache_info` counters —
    per-worker hit/miss/flush totals would otherwise die with the
    process, leaving the parent's aggregate blind to the fan-out.
    """
    meta, items, collect_events = payload
    shm, tables = attach_tables(meta)
    try:
        dfa_rows = tables.pop("dfa_rows")
        dfa_next = tables.pop("dfa_next")
        dfa_reps = tables.pop("dfa_reps")
        alphabet = None
        if "stride_k" in tables:
            # from_tables copies, so the alphabet outlives the mapping.
            alphabet = StrideAlphabet.from_tables(
                {
                    "stride_k": tables.pop("stride_k"),
                    "stride_class_of": tables.pop("stride_class_of"),
                    "stride_reps": tables.pop("stride_reps"),
                }
            )
        kernel = BitsetKernel.from_packed(tables)
        dfa = LazyDfaKernel(kernel, alphabet=alphabet)
        dfa.seed(dfa_rows, dfa_next, dfa_reps)
        results = [
            (index, _scan_one(kernel, dfa, data, resume, collect_events))
            for index, data, resume in items
        ]
        return results, dfa.cache_info()
    finally:
        # Every view of the mapping must die before close() (else
        # BufferError); seeding copied what the DFA keeps, so dropping
        # the locals releases all of them.
        del tables
        try:
            del dfa_rows, dfa_next, dfa_reps, kernel, dfa
        except NameError:
            pass
        try:
            shm.close()
        except BufferError:  # pragma: no cover - defensive
            pass


def scan_streams_sharded(
    tables: Dict[str, np.ndarray],
    items: Sequence[_WorkItem],
    jobs: int,
    *,
    collect_events: bool = True,
) -> Optional[Tuple[List[RawScanResult], List[Dict[str, int]]]]:
    """Shard ``items`` across ``jobs`` workers; results in index order.

    ``tables`` is the union of the kernel's packed tables and the lazy
    DFA's :meth:`~repro.sim.lazydfa.LazyDfaKernel.export_tables`.
    Returns ``(raw results, per-worker cache counters)`` — merge the
    counters with :func:`~repro.sim.lazydfa.merge_cache_infos` — or
    ``None`` when the pool itself is unusable (the caller falls back to
    its serial path); worker exceptions propagate.
    """
    items = list(items)
    if not items:
        return [], []
    jobs = min(max(1, jobs), len(items))
    shards = [items[start::jobs] for start in range(jobs)]
    # The context manager guarantees the published block is released on
    # every exit path — the pool-death fallback used to leak it.
    with SharedTables(tables) as shared:
        payloads = [(shared.meta, shard, collect_events) for shard in shards]
        try:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                shard_results = list(pool.map(_scan_shard_worker, payloads))
        except (OSError, BrokenProcessPool) as error:
            warnings.warn(
                "process-sharded scanning unavailable "
                f"({type(error).__name__}: {error}); "
                "degrading to serial scanning",
                DegradedModeWarning,
                stacklevel=3,
            )
            return None
    ordered: Dict[int, RawScanResult] = {}
    worker_infos: List[Dict[str, int]] = []
    for shard_result, info in shard_results:
        worker_infos.append(info)
        for index, raw in shard_result:
            ordered[index] = raw
    return [ordered[index] for index in range(len(items))], worker_infos
