"""SFA-style split-stream scanning: one input, N workers, exact joins.

:mod:`repro.sim.shard` parallelises *across* streams; this module splits
*one* stream.  The Simultaneous Finite Automata construction (Sin'ya &
Matsuzaki) scans every chunk from every possible entry state at once,
producing an entry-state -> (exit state, report events) mapping; the
mappings compose associatively, so a left-to-right join resolves the
true entry state of every chunk and replays exactly the events a serial
scan would have produced.

Enumerating entry states naively is intractable — the lazy DFA never
knows its full state space.  The packed kernel's transition is
*union-linear* in the activation row (``propagate(a | b) ==
propagate(a) | propagate(b)``), so any entry state decomposes into its
single-bit parts and the chunk mapping is affine::

    exit(entry) = const | UNION_{bit in entry} linear[bit]

where ``const`` is the scan from the empty row (start states firing
every cycle) and ``linear[bit]`` tracks the entry bit's influence with
*no* start-state refresh.  Distinct linear images collapse quickly and
only ever merge or die (the reachable entry-state frontier the
DFA-vs-NFA literature observes stays small), so a worker tracks one
const row plus a short ordered tuple of distinct linear rows — and that
whole tuple is hash-consed into a :class:`SfaKernel` state with cached
transitions, RE2-style.  A warm worker byte is therefore **one list
index**, the same cost as the serial lazy DFA; rare transitions with
*effects* (slot deaths/merges, report events) carry their bookkeeping
on the side.

The join applies each chunk's mapping to the exit row of the previous
chunk: resolve the entry bits to their slot groups, union the const and
surviving linear exits, merge per-offset report rows (no cross terms —
reporting is union-linear too), and replay the events with absolute
offsets.  Results are bit-identical to a serial scan, STE identity and
checkpoint cursor included, for every worker count.

When the entry frontier *does* explode (more distinct linear images at
a chunk's first byte than ``slot_limit``), the worker abandons the
mapping and the parent rescans that one chunk serially at join time —
degradation is per-chunk, reported through the backend's health events.

Worker count comes from ``split_jobs=`` or ``REPRO_SPLIT_JOBS``
(:func:`resolve_split_jobs`), defaulting to 1: splitting a stream forks
processes, so it is opt-in, unlike the multi-stream sharder's
CPU-count default.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.backends.validation import as_symbols
from repro.errors import DegradedModeWarning
from repro.sim.kernel import BitsetKernel
from repro.sim.shard import RawScanResult, SharedTables, attach_tables

SPLIT_JOBS_ENV = "REPRO_SPLIT_JOBS"

#: Budget for cached SFA states (const row + linear-slot rows each).
SFA_CACHE_BYTES = 32 * 1024 * 1024

#: Ceiling on distinct linear rows at a chunk's first byte; beyond it
#: the chunk's mapping is abandoned (entry-state frontier explosion)
#: and the parent rescans that chunk serially at join time.
SFA_SLOT_LIMIT = 256

#: Smallest chunk worth forking a worker for; shorter inputs scan
#: serially even when ``split_jobs`` asks for more workers.
SPLIT_MIN_CHUNK = 4096


def resolve_split_jobs(jobs: Union[int, str, None] = None) -> int:
    """Worker count for split-stream scanning.

    ``jobs`` may be an int, a numeric string, ``"auto"``, or ``None``.
    ``None`` consults ``REPRO_SPLIT_JOBS`` and falls back to 1 (serial)
    — splitting is opt-in; ``"auto"`` falls back to the CPU count.
    The result is always >= 1.
    """
    if jobs is None:
        jobs = os.environ.get(SPLIT_JOBS_ENV) or 1
    elif jobs == "auto":
        jobs = os.environ.get(SPLIT_JOBS_ENV) or (os.cpu_count() or 1)
    return max(1, int(jobs))


def effective_split_jobs(length: int, jobs: int, min_chunk: int) -> int:
    """Actual chunk count: never more than one chunk per ``min_chunk``
    input bytes, so tiny inputs stay on the serial path."""
    if min_chunk <= 0:
        min_chunk = 1
    return max(1, min(int(jobs), length // min_chunk))


class SfaKernel:
    """Lazily-determinised *mapping* automaton over one packed kernel.

    A state is the whole chunk-scan mapping at one input position,
    canonically represented as ``(const row, ordered distinct linear
    rows)`` — rows hash-consed into a shared pool, states into dense
    ids, transitions cached per state in 256-entry lists exactly like
    :class:`~repro.sim.lazydfa.LazyDfaKernel`.  Most transitions are
    *silent* (every linear slot survives 1:1, nobody reports): those
    encode as the bare successor id and cost one list index.  The rest
    carry a flush-immune *effect* record: which source slots died or
    merged (and into which surviving slot), plus the cycle's reporting
    rows for the const part and each firing slot.

    The cached automaton is shared state; the per-chunk group
    bookkeeping lives in :meth:`scan_mapping`'s locals, so one kernel
    serves many chunks and its cache keeps warming.  ``export_tables``
    /:meth:`seed` ship the silent transitions through shared memory the
    same way the lazy DFA's tables travel — effectful transitions
    recompute on first use, one miss each.
    """

    def __init__(
        self,
        kernel: BitsetKernel,
        *,
        cache_bytes: int = SFA_CACHE_BYTES,
        max_states: Optional[int] = None,
        slot_limit: int = SFA_SLOT_LIMIT,
    ):
        self._kernel = kernel
        self._slot_limit = max(1, int(slot_limit))
        if max_states is None:
            # States are heavier than lazy-DFA states: a const row, a
            # handful of slot rows, and a 256-entry transition list.
            est = 16 * kernel.row_bytes + 256 * 8 + 512
            max_states = cache_bytes // est
        self._max_states = max(64, int(max_states))
        self._lookups = 0
        self._misses = 0
        self._flushes = 0
        # Effects are flush-immune, like the lazy DFA's report events:
        # encoded transitions created after a flush reuse their ids.
        self._effects: List[
            Tuple[Optional[Tuple[int, ...]], Optional[bytes],
                  Tuple[Tuple[int, bytes], ...]]
        ] = []
        self._effect_of: Dict[tuple, int] = {}
        # Per-first-byte entry construction, memoised by byte value:
        # (const row, slot rows, bit -> group table, const offset-0
        # reporting row).  Stores rows, not state ids, so it survives
        # cache flushes.
        self._entries: Dict[int, tuple] = {}
        self._reset_states()

    def _reset_states(self):
        self._row_ids: Dict[bytes, int] = {}
        self._row_pool: List[np.ndarray] = []
        self._state_ids: Dict[tuple, int] = {}
        #: Per-state (const row id, tuple of slot row ids).
        self._states: List[Tuple[int, Tuple[int, ...]]] = []
        #: Hot-loop view: per-state 256-entry encoded transitions
        #: (-1 missing; ``next_id`` when silent and 1:1; else
        #: ``(effect_id + 1) << 32 | next_id``).
        self._enc_rows: List[list] = []

    # -- interning ---------------------------------------------------------

    def _intern_row(self, row: np.ndarray) -> int:
        key = np.ascontiguousarray(row).tobytes()
        rid = self._row_ids.get(key)
        if rid is None:
            rid = len(self._row_pool)
            self._row_ids[key] = rid
            frozen = np.frombuffer(key, dtype=np.uint64)
            self._row_pool.append(frozen)
        return rid

    def _intern_state(self, const_rid: int, slot_rids: Tuple[int, ...]) -> int:
        key = (const_rid,) + slot_rids
        sid = self._state_ids.get(key)
        if sid is None:
            sid = len(self._states)
            self._state_ids[key] = sid
            self._states.append((const_rid, slot_rids))
            self._enc_rows.append([-1] * 256)
        return sid

    def _effect_id(
        self,
        survivors: Optional[Tuple[int, ...]],
        const_rep: Optional[bytes],
        slot_reps: Tuple[Tuple[int, bytes], ...],
    ) -> int:
        key = (survivors, const_rep, slot_reps)
        eid = self._effect_of.get(key)
        if eid is None:
            eid = len(self._effects)
            self._effect_of[key] = eid
            self._effects.append((survivors, const_rep, slot_reps))
        return eid

    @property
    def sfa_states(self) -> int:
        return len(self._states)

    @property
    def slot_limit(self) -> int:
        return self._slot_limit

    # -- entry construction ------------------------------------------------

    def _entry(self, sym0: int) -> tuple:
        """Mapping state after a chunk's first byte, memoised per byte.

        Every entry bit alive on ``sym0`` (its match row contains the
        byte) steps to its successor mask; distinct masks become the
        initial linear slots, and ``group_of_bit`` records which slot
        each bit feeds (-1: dead after one cycle — the join still
        charges its offset-0 report directly from the entry row).  The
        const part takes the idle step, and its offset-0 reporting row
        rides along.
        """
        memo = self._entries.get(sym0)
        if memo is None:
            kernel = self._kernel
            idle_matched = kernel.match_matrix[sym0] & kernel.start_all_row
            const_row, _ = kernel.propagate(idle_matched)
            const_rep = idle_matched & kernel.report_row
            const0 = const_rep.tobytes() if const_rep.any() else None
            group_of_bit = np.full(kernel.n_bits, -1, dtype=np.int32)
            slot_rows: List[np.ndarray] = []
            slot_keys: Dict[bytes, int] = {}
            for bit in kernel.bit_indices(kernel.match_matrix[sym0]):
                successors = kernel.propagate(
                    kernel.pack(1 << int(bit))
                )[0]
                if not successors.any():
                    continue
                key = successors.tobytes()
                group = slot_keys.get(key)
                if group is None:
                    group = len(slot_rows)
                    slot_keys[key] = group
                    slot_rows.append(successors)
                group_of_bit[bit] = group
            group_of_bit.setflags(write=False)
            memo = (const_row, tuple(slot_rows), group_of_bit, const0)
            self._entries[sym0] = memo
        return memo

    # -- transitions -------------------------------------------------------

    def _miss(self, sid: int, symbol: int) -> Tuple[int, int]:
        """Fill the ``(sid, symbol)`` transition; returns ``(sid, enc)``.

        May flush the whole cache when the state budget is exhausted;
        the returned ``sid`` is the (possibly re-interned) id of the
        *current* state, so the scan loop's cursor survives the remap.
        """
        self._misses += 1
        kernel = self._kernel
        const_rid, slot_rids = self._states[sid]
        const_row = self._row_pool[const_rid]
        slot_rows = [self._row_pool[rid] for rid in slot_rids]

        match_row = kernel.match_matrix[symbol]
        matched_const = match_row & (const_row | kernel.start_all_row)
        next_const, _ = kernel.propagate(matched_const)
        const_rep = matched_const & kernel.report_row
        const_rep_bytes = const_rep.tobytes() if const_rep.any() else None

        survivors: List[int] = []
        next_keys: Dict[bytes, int] = {}
        next_rows: List[np.ndarray] = []
        slot_reps: List[Tuple[int, bytes]] = []
        for index, row in enumerate(slot_rows):
            matched = match_row & row
            rep = matched & kernel.report_row
            if rep.any():
                slot_reps.append((index, rep.tobytes()))
            successor, nonzero = kernel.propagate(matched)
            if not nonzero:
                survivors.append(-1)
                continue
            key = successor.tobytes()
            dest = next_keys.get(key)
            if dest is None:
                dest = len(next_rows)
                next_keys[key] = dest
                next_rows.append(successor)
            survivors.append(dest)

        identity = (
            len(next_rows) == len(slot_rows)
            and all(dest == index for index, dest in enumerate(survivors))
        )
        if len(self._states) >= self._max_states:
            self._flushes += 1
            self._reset_states()
            const_rid = self._intern_row(const_row)
            slot_rids = tuple(self._intern_row(row) for row in slot_rows)
            sid = self._intern_state(const_rid, slot_rids)
        next_const_rid = self._intern_row(next_const)
        next_slot_rids = tuple(self._intern_row(row) for row in next_rows)
        nid = self._intern_state(next_const_rid, next_slot_rids)
        if identity and const_rep_bytes is None and not slot_reps:
            enc = nid
        else:
            effect = self._effect_id(
                None if identity else tuple(survivors),
                const_rep_bytes,
                tuple(slot_reps),
            )
            enc = ((effect + 1) << 32) | nid
        self._enc_rows[sid][symbol] = enc
        return sid, enc

    # -- mapping scan ------------------------------------------------------

    def scan_mapping(self, symbols: np.ndarray) -> Optional[dict]:
        """The chunk's entry-state -> (exit, events) mapping, or ``None``
        when the entry frontier exceeds ``slot_limit`` (the caller
        rescans the chunk serially at join time).

        The mapping is returned in join-ready form: ``group_of_bit``
        resolves any entry row to its slot groups; ``exit_of_group``
        and the event lists carry the per-group contributions the join
        unions with the const part.  All offsets are chunk-local.
        """
        length = len(symbols)
        if length == 0:
            raise ValueError("split mapping chunks must be non-empty")
        sym_list = symbols.tolist()
        const_row, slot_rows, group_of_bit, const0 = self._entry(sym_list[0])
        n_groups = len(slot_rows)
        if n_groups > self._slot_limit:
            return None
        const_rid = self._intern_row(const_row)
        sid = self._intern_state(
            const_rid, tuple(self._intern_row(row) for row in slot_rows)
        )
        # Per-chunk bookkeeping: which original groups ride each slot.
        slot_groups: List[List[int]] = [[group] for group in range(n_groups)]
        const_events: List[Tuple[int, bytes]] = []
        if const0 is not None:
            const_events.append((0, const0))
        linear_events: List[Tuple[int, bytes, Tuple[int, ...]]] = []

        self._lookups += length - 1
        enc_rows = self._enc_rows
        effects = self._effects
        row = enc_rows[sid]
        for i in range(1, length):
            value = row[sym_list[i]]
            if value < 0:
                sid, value = self._miss(sid, sym_list[i])
                enc_rows = self._enc_rows
                effects = self._effects
            if value < 4294967296:
                sid = value
            else:
                sid = value & 4294967295
                survivors, const_rep, slot_reps = effects[(value >> 32) - 1]
                if const_rep is not None:
                    const_events.append((i, const_rep))
                for slot_index, rep in slot_reps:
                    groups = slot_groups[slot_index]
                    if groups:
                        linear_events.append((i, rep, tuple(groups)))
                if survivors is not None:
                    merged: Dict[int, List[int]] = {}
                    for slot_index, dest in enumerate(survivors):
                        if dest < 0:
                            continue
                        merged.setdefault(dest, []).extend(
                            slot_groups[slot_index]
                        )
                    slot_groups = [
                        merged.get(dest, []) for dest in range(len(merged))
                    ]
            row = enc_rows[sid]

        const_exit_rid, exit_slot_rids = self._states[sid]
        exit_of_group: List[Optional[bytes]] = [None] * n_groups
        for slot_index, groups in enumerate(slot_groups):
            row_bytes = self._row_pool[exit_slot_rids[slot_index]].tobytes()
            for group in groups:
                exit_of_group[group] = row_bytes
        return {
            "group_of_bit": np.asarray(group_of_bit),
            "n_groups": n_groups,
            "const_exit": self._row_pool[const_exit_rid].tobytes(),
            "exit_of_group": exit_of_group,
            "const_events": const_events,
            "linear_events": linear_events,
            "slots_final": sum(1 for groups in slot_groups if groups),
        }

    # -- publication -------------------------------------------------------

    def export_tables(self) -> Dict[str, np.ndarray]:
        """Canonical SFA tables for shared-memory publication.

        Only *silent* transitions ship (bare next ids); effectful ones
        recompute on first use in the consumer, exactly the discipline
        :meth:`LazyDfaKernel.export_tables` applies to reporting
        transitions.
        """
        states = len(self._states)
        words = self._kernel.words
        if self._row_pool:
            rows = np.ascontiguousarray(np.stack(self._row_pool))
        else:
            rows = np.zeros((0, words), dtype=np.uint64)
        const = np.fromiter(
            (state[0] for state in self._states), dtype=np.int32, count=states
        )
        indptr = np.zeros(states + 1, dtype=np.int32)
        for index, (_, slot_rids) in enumerate(self._states):
            indptr[index + 1] = indptr[index] + len(slot_rids)
        slot_rids = np.fromiter(
            (
                rid
                for _, state_slots in self._states
                for rid in state_slots
            ),
            dtype=np.int32,
            count=int(indptr[-1]),
        )
        nxt = np.full((states, 256), -1, dtype=np.int32)
        for sid, enc_row in enumerate(self._enc_rows):
            for symbol, enc in enumerate(enc_row):
                if 0 <= enc < 4294967296:
                    nxt[sid, symbol] = enc
        return {
            "sfa_rows": rows,
            "sfa_state_const": const,
            "sfa_slot_indptr": indptr,
            "sfa_slot_rids": slot_rids,
            "sfa_next": nxt,
        }

    def seed(self, tables: Dict[str, np.ndarray]) -> None:
        """Merge :meth:`export_tables` output into this kernel.

        Works on a warm kernel too (ids are remapped through the
        intern tables), which is how the parent folds each worker's
        newly-discovered states back into its master cache after a
        join — the next split call ships the union to every worker.
        """
        rows = np.asarray(tables["sfa_rows"], dtype=np.uint64)
        const = np.asarray(tables["sfa_state_const"])
        indptr = np.asarray(tables["sfa_slot_indptr"])
        slot_rids = np.asarray(tables["sfa_slot_rids"])
        nxt = np.asarray(tables["sfa_next"])
        states = len(const)
        if not states:
            return
        # Copy: the rows may view a shared-memory block that is
        # unmapped right after seeding.
        rows = np.array(rows, dtype=np.uint64)
        rid_map = [self._intern_row(rows[index]) for index in range(len(rows))]
        sid_map = []
        for sid in range(states):
            mapped_slots = tuple(
                rid_map[rid]
                for rid in slot_rids[indptr[sid] : indptr[sid + 1]]
            )
            sid_map.append(
                self._intern_state(rid_map[const[sid]], mapped_slots)
            )
        for sid in range(states):
            enc_row = self._enc_rows[sid_map[sid]]
            source = nxt[sid]
            for symbol in np.flatnonzero(source >= 0):
                if enc_row[symbol] < 0:
                    enc_row[symbol] = sid_map[source[symbol]]

    # -- introspection -----------------------------------------------------

    def cache_info(self) -> Dict[str, int]:
        """Mapping-automaton cache counters (lazy-DFA conventions)."""
        return {
            "states": len(self._states),
            "rows": len(self._row_pool),
            "max_states": self._max_states,
            "hits": self._lookups - self._misses,
            "misses": self._misses,
            "flushes": self._flushes,
            "effects": len(self._effects),
            "slot_limit": self._slot_limit,
        }


# -- worker ----------------------------------------------------------------


def _split_mapping_worker(payload):
    """Build chunk mappings against the shared tables.

    Top-level so the function pickles; rebuilds the kernel zero-copy,
    seeds the SFA from the parent's warm silent transitions, and maps
    its chunks.  Returns ``(indexed mappings, newly-warmed SFA tables,
    cache counters)`` — the parent merges the tables back so the cache
    keeps warming across calls.
    """
    meta, items, slot_limit, return_tables = payload
    shm, tables = attach_tables(meta)
    try:
        sfa_tables = {
            name: tables.pop(name)
            for name in list(tables)
            if name.startswith("sfa_")
        }
        kernel = BitsetKernel.from_packed(tables)
        sfa = SfaKernel(kernel, slot_limit=slot_limit)
        sfa.seed(sfa_tables)
        results = [
            (index, sfa.scan_mapping(as_symbols(data)))
            for index, data in items
        ]
        export = sfa.export_tables() if return_tables else None
        return results, export, sfa.cache_info()
    finally:
        # Every view of the mapping must die before close() (else
        # BufferError); seeding and from_packed copied what they keep.
        del tables
        try:
            del sfa_tables, kernel, sfa
        except NameError:
            pass
        try:
            shm.close()
        except BufferError:  # pragma: no cover - defensive
            pass


# -- join ------------------------------------------------------------------


def _or_bytes(left: bytes, right: bytes) -> bytes:
    return (
        int.from_bytes(left, "little") | int.from_bytes(right, "little")
    ).to_bytes(len(left), "little")


def _apply_mapping(
    kernel: BitsetKernel,
    entry_row: np.ndarray,
    first_byte: int,
    mapping: dict,
) -> Tuple[List[Tuple[int, bytes]], np.ndarray]:
    """Resolve one chunk's mapping at its true entry row.

    Returns the chunk-local ``(offset, reporting row)`` events (offset
    order, rows already unioned across the const part and the entry's
    surviving slot groups) and the exit activation row.
    """
    group_of_bit = mapping["group_of_bit"]
    groups = set()
    for bit in kernel.bit_indices(entry_row):
        group = int(group_of_bit[bit])
        if group >= 0:
            groups.add(group)
    merged: Dict[int, bytes] = {}
    # Offset 0: the entry bits' own reporting contribution never enters
    # the worker's mapping (its linear slots start after the first
    # byte) — charge it directly from the entry row.
    entry_rep = kernel.match_matrix[first_byte] & entry_row & kernel.report_row
    if entry_rep.any():
        merged[0] = entry_rep.tobytes()
    for offset, rep in mapping["const_events"]:
        have = merged.get(offset)
        merged[offset] = rep if have is None else _or_bytes(have, rep)
    for offset, rep, event_groups in mapping["linear_events"]:
        if groups.isdisjoint(event_groups):
            continue
        have = merged.get(offset)
        merged[offset] = rep if have is None else _or_bytes(have, rep)
    exit_bytes = mapping["const_exit"]
    exit_of_group = mapping["exit_of_group"]
    for group in groups:
        contribution = exit_of_group[group]
        if contribution is not None:
            exit_bytes = _or_bytes(exit_bytes, contribution)
    exit_row = np.frombuffer(exit_bytes, dtype=np.uint64)
    return sorted(merged.items()), exit_row


def _chunk_bounds(length: int, chunks: int) -> List[Tuple[int, int]]:
    """Contiguous chunk (start, end) pairs covering ``length`` bytes."""
    base, extra = divmod(length, chunks)
    bounds = []
    start = 0
    for index in range(chunks):
        end = start + base + (1 if index < extra else 0)
        bounds.append((start, end))
        start = end
    return bounds


def scan_stream_split(
    kernel: BitsetKernel,
    dfa,
    sfa: SfaKernel,
    data: bytes,
    jobs: int,
    *,
    resume: Optional[Tuple[int, int, bool]] = None,
    merge_tables: bool = True,
) -> Optional[Tuple[RawScanResult, dict]]:
    """Scan one stream across ``jobs`` parallel actors; exact join.

    The parent is actor 0: it publishes the kernel + SFA tables once
    through shared memory, hands chunks 1..N-1 to a process pool, scans
    chunk 0 itself on the (warm) lazy DFA ``dfa`` while the pool runs,
    then joins left-to-right.  Returns ``(raw result, stats)`` in the
    sharded scanner's raw form, or ``None`` when the pool itself is
    unusable (the caller falls back to its serial path); worker
    exceptions propagate.  A chunk whose mapping was abandoned
    (frontier explosion) is rescanned serially on ``dfa`` during the
    join and counted in ``stats["degraded_chunks"]``.
    """
    symbols = as_symbols(data)
    length = len(symbols)
    bounds = _chunk_bounds(length, max(2, int(jobs)))
    if resume is None:
        prev = kernel.pack(0)
        sod = kernel.has_sod
    else:
        _, vector, pending = resume
        prev = kernel.pack(vector)
        sod = kernel.has_sod and pending

    tables = dict(kernel.packed_tables())
    tables.update(sfa.export_tables())
    futures = []
    try:
        with SharedTables(tables) as shared:
            try:
                with ProcessPoolExecutor(max_workers=len(bounds) - 1) as pool:
                    for index, (start, end) in enumerate(bounds[1:], 1):
                        payload = (
                            shared.meta,
                            [(index, bytes(data[start:end]))],
                            sfa.slot_limit,
                            merge_tables,
                        )
                        futures.append(
                            pool.submit(_split_mapping_worker, payload)
                        )
                    # Actor 0: the parent scans the leader chunk on its
                    # own warm DFA while the pool maps the rest.
                    leader_events, leader_total, prev, sod = dfa.scan(
                        symbols[bounds[0][0] : bounds[0][1]],
                        prev=prev,
                        sod=sod,
                        collect_events=True,
                    )
                    worker_returns = [future.result() for future in futures]
            except (OSError, BrokenProcessPool) as error:
                warnings.warn(
                    "split-stream scanning unavailable "
                    f"({type(error).__name__}: {error}); "
                    "degrading to serial scanning",
                    DegradedModeWarning,
                    stacklevel=3,
                )
                return None
    except (OSError, BrokenProcessPool) as error:
        # Shared-memory publication itself failed (e.g. /dev/shm full).
        warnings.warn(
            "split-stream scanning unavailable "
            f"({type(error).__name__}: {error}); degrading to serial",
            DegradedModeWarning,
            stacklevel=3,
        )
        return None

    mappings: Dict[int, Optional[dict]] = {}
    worker_infos = []
    for results, export, info in worker_returns:
        for index, mapping in results:
            mappings[index] = mapping
        worker_infos.append(info)
        if merge_tables and export is not None:
            sfa.seed(export)

    # Offsets stay stream-local: the caller's materialisation applies
    # the resume base, exactly as it does for the serial raw results.
    raw_events: List[Tuple[int, int, bytes]] = []
    total = 0
    for offset, event_id in leader_events:
        count, rep_bytes = dfa.event(event_id)
        raw_events.append((offset, count, rep_bytes))
    total += leader_total

    degraded = 0
    for index, (start, end) in enumerate(bounds[1:], 1):
        mapping = mappings.get(index)
        if mapping is None:
            # Frontier explosion: rescan this one chunk serially from
            # its (now known) true entry row.
            degraded += 1
            events, chunk_total, prev, sod = dfa.scan(
                symbols[start:end], prev=prev, sod=sod, collect_events=True
            )
            for offset, event_id in events:
                count, rep_bytes = dfa.event(event_id)
                raw_events.append((start + offset, count, rep_bytes))
            total += chunk_total
            continue
        chunk_events, prev = _apply_mapping(
            kernel, prev, int(symbols[start]), mapping
        )
        for offset, rep_bytes in chunk_events:
            count = int.from_bytes(rep_bytes, "little").bit_count()
            raw_events.append((start + offset, count, rep_bytes))
            total += count

    raw: RawScanResult = (
        raw_events,
        total,
        kernel.unpack(prev),
        bool(sod),
        length,
    )
    stats = {
        "chunks": len(bounds),
        "degraded_chunks": degraded,
        "worker_cache_infos": worker_infos,
        "sfa_states": sfa.sfa_states,
    }
    return raw, stats
