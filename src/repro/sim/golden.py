"""Golden reference interpreter for homogeneous automata.

This is the reproduction's stand-in for VASim: a functional, hardware-
agnostic interpreter defining the ground-truth semantics that the mapped
Cache Automaton simulation (:mod:`repro.sim.functional`) must reproduce
bit-for-bit.

Semantics per input symbol (Micron AP / ANML convention):

1. *enabled* = successors of last cycle's matched states, plus all-input
   start states, plus start-of-data start states on the first symbol;
2. *matched* = enabled states whose label contains the symbol;
3. every matched reporting state emits a report record for this offset.

Execution runs on the packed-bitset kernel (:mod:`repro.sim.kernel`):
state sets are ``uint64`` word arrays, each chunk of input gathers its
match candidates from a ``(256, words)`` match matrix in one shot, and
successor propagation is a memoised gather/OR over a precomputed
successor table — so after warm-up each cycle costs a few fixed-size
numpy operations instead of per-state Python work, and idle stretches of
the input are skipped in whole vectorised slices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.automata.anml import HomogeneousAutomaton, StartKind
from repro.sim.kernel import CHUNK_SYMBOLS, BitsetKernel, as_symbols, popcount_rows


@dataclass(frozen=True)
class Report:
    """One match event: ``ste_id`` fired on the symbol at ``offset``."""

    offset: int
    ste_id: str
    report_code: Optional[str] = None


@dataclass
class RunStats:
    """Per-run activity statistics (feeds Table 1 and the energy model).

    ``matched_per_cycle`` is populated only when the run requested
    ``collect_cycle_stats=True`` — both :class:`GoldenSimulator` and
    :class:`repro.sim.functional.MappedSimulator` honour the flag, so the
    two simulators' stats agree field-for-field.
    """

    symbols_processed: int = 0
    total_matched_states: int = 0
    matched_per_cycle: List[int] = field(default_factory=list)

    @property
    def average_active_states(self) -> float:
        """Mean number of matched (active) states per input symbol."""
        if self.symbols_processed == 0:
            return 0.0
        return self.total_matched_states / self.symbols_processed


@dataclass(frozen=True)
class Checkpoint:
    """Suspend/resume state (Section 2.9).

    The OS can suspend an NFA process "by recording the number of input
    symbols processed and the active state vector to memory" — which is
    exactly this object: the global symbol counter, the active-state
    vector (successor activations pending for the next symbol), and
    whether the start-of-data states are still armed.
    """

    symbols_processed: int
    active_state_vector: int
    start_of_data_pending: bool


@dataclass
class RunResult:
    reports: List[Report]
    stats: RunStats
    #: Resume state after the run (pass back via ``resume=`` to continue).
    checkpoint: Optional["Checkpoint"] = None

    def report_offsets(self) -> List[int]:
        return sorted({report.offset for report in self.reports})


class GoldenSimulator:
    """Reference interpreter over a fixed automaton (reusable across runs)."""

    def __init__(self, automaton: HomogeneousAutomaton):
        automaton.validate()
        self.automaton = automaton
        self._ids: List[str] = automaton.ste_ids()
        index = {ste_id: i for i, ste_id in enumerate(self._ids)}
        self._index = index

        successor_masks: List[int] = [0] * len(self._ids)
        for source, target in automaton.edges():
            successor_masks[index[source]] |= 1 << index[target]

        start_all = 0
        start_sod = 0
        report_mask = 0
        match_table = [0] * 256
        for ste in automaton.stes():
            bit = 1 << index[ste.ste_id]
            if ste.start is StartKind.ALL_INPUT:
                start_all |= bit
            elif ste.start is StartKind.START_OF_DATA:
                start_sod |= bit
            if ste.reporting:
                report_mask |= bit
            for symbol in ste.symbols:
                match_table[symbol] |= bit

        self._kernel = BitsetKernel(
            len(self._ids), successor_masks, match_table,
            start_all, start_sod, report_mask,
        )

    def run(
        self,
        data: bytes,
        *,
        collect_reports: bool = True,
        collect_cycle_stats: bool = False,
        resume: Optional[Checkpoint] = None,
    ) -> RunResult:
        """Process ``data`` and return reports plus activity statistics.

        ``collect_reports=False`` skips report materialisation (useful for
        very long activity-profiling runs); ``collect_cycle_stats`` keeps
        the full per-cycle matched-state counts, not just the total.

        Passing a previous run's ``checkpoint`` as ``resume`` continues a
        suspended stream: report offsets stay global, and splitting a
        stream at any point yields exactly the reports of one long run.
        """
        symbols = as_symbols(data)
        kernel = self._kernel
        reports: List[Report] = []
        stats = RunStats()
        if resume is None:
            base_offset = 0
            prev = kernel.pack(0)
            sod = kernel.has_sod
        else:
            base_offset = resume.symbols_processed
            prev = kernel.pack(resume.active_state_vector)
            sod = kernel.has_sod and resume.start_of_data_pending
        prev_nonzero = bool(prev.any())

        for start in range(0, len(symbols), CHUNK_SYMBOLS):
            sym = symbols[start : start + CHUNK_SYMBOLS]
            matched_rows = kernel.match_matrix[sym]
            prev, prev_nonzero, sod = kernel.run_chunk(
                sym, matched_rows, None, prev, prev_nonzero, sod
            )
            counts = popcount_rows(matched_rows)
            stats.total_matched_states += int(counts.sum())
            if collect_cycle_stats:
                stats.matched_per_cycle.extend(counts.tolist())
            if collect_reports:
                reporting_rows = matched_rows & kernel.report_row
                for cycle in np.flatnonzero(reporting_rows.any(axis=1)):
                    self._emit_reports(
                        reporting_rows[cycle],
                        base_offset + start + int(cycle),
                        reports,
                    )
        stats.symbols_processed = len(symbols)
        checkpoint = Checkpoint(
            symbols_processed=base_offset + len(symbols),
            active_state_vector=kernel.unpack(prev),
            start_of_data_pending=bool(sod),
        )
        return RunResult(reports, stats, checkpoint)

    def _emit_reports(self, row, offset: int, reports: List[Report]):
        for bit in self._kernel.bit_indices(row):
            ste = self.automaton.ste(self._ids[bit])
            reports.append(Report(offset, ste.ste_id, ste.report_code))


def simulate(automaton: HomogeneousAutomaton, data: bytes, **kwargs) -> RunResult:
    """One-shot convenience wrapper around :class:`GoldenSimulator`."""
    return GoldenSimulator(automaton).run(data, **kwargs)


def match_offsets(automaton: HomogeneousAutomaton, data: bytes) -> List[int]:
    """Sorted distinct offsets at which any reporting state fires."""
    return simulate(automaton, data).report_offsets()


def average_active_states(
    automaton: HomogeneousAutomaton, data: bytes
) -> float:
    """Table 1's *Avg. Active States* metric for ``automaton`` on ``data``."""
    result = simulate(automaton, data, collect_reports=False)
    return result.stats.average_active_states
