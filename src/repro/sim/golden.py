"""Golden reference interpreter for homogeneous automata.

This is the reproduction's stand-in for VASim: a functional, hardware-
agnostic interpreter defining the ground-truth semantics that the mapped
Cache Automaton simulation (:mod:`repro.sim.functional`) must reproduce
bit-for-bit.

Semantics per input symbol (Micron AP / ANML convention):

1. *enabled* = successors of last cycle's matched states, plus all-input
   start states, plus start-of-data start states on the first symbol;
2. *matched* = enabled states whose label contains the symbol;
3. every matched reporting state emits a report record for this offset.

The implementation packs state sets into arbitrary-precision integers, so
one simulation step is a handful of big-int AND/OR operations.  Successor
propagation — the only per-active-state work — is memoised per 16-bit
block of the state bitmask, which exploits the same locality the paper's
partition-disabling hardware does: the distinct local activation patterns
in a block are few, so after warm-up each cycle costs one dictionary
lookup per *active block*, not per active state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.automata.anml import HomogeneousAutomaton, StartKind
from repro.errors import SimulationError


@dataclass(frozen=True)
class Report:
    """One match event: ``ste_id`` fired on the symbol at ``offset``."""

    offset: int
    ste_id: str
    report_code: Optional[str] = None


@dataclass
class RunStats:
    """Per-run activity statistics (feeds Table 1 and the energy model)."""

    symbols_processed: int = 0
    total_matched_states: int = 0
    matched_per_cycle: List[int] = field(default_factory=list)

    @property
    def average_active_states(self) -> float:
        """Mean number of matched (active) states per input symbol."""
        if self.symbols_processed == 0:
            return 0.0
        return self.total_matched_states / self.symbols_processed


@dataclass(frozen=True)
class Checkpoint:
    """Suspend/resume state (Section 2.9).

    The OS can suspend an NFA process "by recording the number of input
    symbols processed and the active state vector to memory" — which is
    exactly this object: the global symbol counter, the active-state
    vector (successor activations pending for the next symbol), and
    whether the start-of-data states are still armed.
    """

    symbols_processed: int
    active_state_vector: int
    start_of_data_pending: bool


@dataclass
class RunResult:
    reports: List[Report]
    stats: RunStats
    #: Resume state after the run (pass back via ``resume=`` to continue).
    checkpoint: Optional["Checkpoint"] = None

    def report_offsets(self) -> List[int]:
        return sorted({report.offset for report in self.reports})


class GoldenSimulator:
    """Reference interpreter over a fixed automaton (reusable across runs)."""

    def __init__(self, automaton: HomogeneousAutomaton):
        automaton.validate()
        self.automaton = automaton
        self._ids: List[str] = automaton.ste_ids()
        index: Dict[str, int] = {ste_id: i for i, ste_id in enumerate(self._ids)}
        self._index = index

        self._successor_mask: List[int] = [0] * len(self._ids)
        for source, target in automaton.edges():
            self._successor_mask[index[source]] |= 1 << index[target]

        self._start_all = 0
        self._start_sod = 0
        self._report_mask = 0
        for ste in automaton.stes():
            bit = 1 << index[ste.ste_id]
            if ste.start is StartKind.ALL_INPUT:
                self._start_all |= bit
            elif ste.start is StartKind.START_OF_DATA:
                self._start_sod |= bit
            if ste.reporting:
                self._report_mask |= bit

        # match_table[symbol] = bitmask of states whose label contains it.
        self._match_table = [0] * 256
        for ste in automaton.stes():
            bit = 1 << index[ste.ste_id]
            for symbol in ste.symbols:
                self._match_table[symbol] |= bit

        # Successor propagation is memoised per 16-bit block of the state
        # bitmask: _block_cache[block][local_pattern] = OR of the successor
        # masks of the states set in that pattern.
        self._block_count = (len(self._ids) + 15) // 16
        self._mask_bytes = self._block_count * 2
        self._block_cache: List[Dict[int, int]] = [
            {} for _ in range(self._block_count)
        ]

    def _block_successors(self, block: int, pattern: int) -> int:
        """OR of successor masks for the states in ``pattern`` of ``block``."""
        cache = self._block_cache[block]
        combined = cache.get(pattern)
        if combined is None:
            combined = 0
            base = block * 16
            remaining = pattern
            while remaining:
                low_bit = remaining & -remaining
                combined |= self._successor_mask[base + low_bit.bit_length() - 1]
                remaining ^= low_bit
            cache[pattern] = combined
        return combined

    def run(
        self,
        data: bytes,
        *,
        collect_reports: bool = True,
        collect_cycle_stats: bool = False,
        resume: Optional[Checkpoint] = None,
    ) -> RunResult:
        """Process ``data`` and return reports plus activity statistics.

        ``collect_reports=False`` skips report materialisation (useful for
        very long activity-profiling runs); ``collect_cycle_stats`` keeps
        the full per-cycle matched-state counts, not just the total.

        Passing a previous run's ``checkpoint`` as ``resume`` continues a
        suspended stream: report offsets stay global, and splitting a
        stream at any point yields exactly the reports of one long run.
        """
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise SimulationError(f"input must be bytes-like, got {type(data)!r}")
        match_table = self._match_table
        start_all = self._start_all
        report_mask = self._report_mask
        reports: List[Report] = []
        stats = RunStats()
        per_cycle = stats.matched_per_cycle
        matched = 0
        if resume is None:
            base_offset = 0
            enabled_from_matches = 0
            sod = self._start_sod
        else:
            base_offset = resume.symbols_processed
            enabled_from_matches = resume.active_state_vector
            sod = self._start_sod if resume.start_of_data_pending else 0
        for offset, symbol in enumerate(data, start=base_offset):
            enabled = enabled_from_matches | start_all | sod
            sod = 0
            matched = enabled & match_table[symbol]
            stats.total_matched_states += matched.bit_count()
            if collect_cycle_stats:
                per_cycle.append(matched.bit_count())
            reporting = matched & report_mask
            if reporting and collect_reports:
                self._emit_reports(reporting, offset, reports)
            enabled_from_matches = 0
            if matched:
                blocks = np.frombuffer(
                    matched.to_bytes(self._mask_bytes, "little"), dtype=np.uint16
                )
                for block in np.flatnonzero(blocks):
                    enabled_from_matches |= self._block_successors(
                        int(block), int(blocks[block])
                    )
        stats.symbols_processed = len(data)
        checkpoint = Checkpoint(
            symbols_processed=base_offset + len(data),
            active_state_vector=enabled_from_matches,
            start_of_data_pending=bool(sod),
        )
        return RunResult(reports, stats, checkpoint)

    def _emit_reports(self, reporting: int, offset: int, reports: List[Report]):
        while reporting:
            low_bit = reporting & -reporting
            ste = self.automaton.ste(self._ids[low_bit.bit_length() - 1])
            reports.append(Report(offset, ste.ste_id, ste.report_code))
            reporting ^= low_bit


def simulate(automaton: HomogeneousAutomaton, data: bytes, **kwargs) -> RunResult:
    """One-shot convenience wrapper around :class:`GoldenSimulator`."""
    return GoldenSimulator(automaton).run(data, **kwargs)


def match_offsets(automaton: HomogeneousAutomaton, data: bytes) -> List[int]:
    """Sorted distinct offsets at which any reporting state fires."""
    return simulate(automaton, data).report_offsets()


def average_active_states(
    automaton: HomogeneousAutomaton, data: bytes
) -> float:
    """Table 1's *Avg. Active States* metric for ``automaton`` on ``data``."""
    result = simulate(automaton, data, collect_reports=False)
    return result.stats.average_active_states
